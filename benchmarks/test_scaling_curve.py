"""Scaling ablation: the constraint-checking gap grows with graph size.

The paper's core motivation (§1, Fig 2) is that post-hoc constraint
checking degrades *faster than exploration* as graphs grow.  This
sweep holds the generator family fixed (community graphs, the
quasi-clique-rich case) and scales the vertex count, measuring
Contigra and the post-hoc baseline on the same MQC workload.

Expected shape: the baseline/Contigra time ratio rises monotonically
(within noise) with graph size, and the baseline's check count grows
superlinearly.
"""

from repro.apps import maximal_quasi_cliques
from repro.baselines import posthoc_mqc
from repro.bench import format_table, timed_run
from repro.graph import community_graph

from _common import BASELINE_TIME_LIMIT, emit, run_once

GAMMA = 0.8
MAX_SIZE = 5
SCALES = (6, 12, 24, 48, 96)  # number of planted communities of size 8


def run_experiment() -> str:
    rows = []
    ratios = []
    for communities in SCALES:
        graph = community_graph(
            communities, 8, intra_probability=0.65, inter_edges=2,
            seed=communities, name=f"scale-{communities}",
        )
        ours = timed_run(
            lambda: maximal_quasi_cliques(
                graph, GAMMA, MAX_SIZE, time_limit=BASELINE_TIME_LIMIT * 4
            )
        )
        baseline = timed_run(
            lambda: posthoc_mqc(
                graph, GAMMA, MAX_SIZE, time_limit=BASELINE_TIME_LIMIT
            )
        )
        if ours.ok and baseline.ok:
            ratio = baseline.seconds / max(ours.seconds, 1e-9)
            ratios.append(ratio)
            ratio_cell = f"{ratio:.1f}x"
        else:
            ratio_cell = "DNF" if not baseline.ok else "-"
        rows.append(
            (
                graph.num_vertices,
                graph.num_edges,
                ours.cell(),
                baseline.cell(),
                ratio_cell,
                baseline.stats.get("constraint_checks", "-")
                if baseline.ok
                else "-",
            )
        )
    table = format_table(
        ["vertices", "edges", "Contigra(s)", "post-hoc(s)",
         "gap", "post-hoc checks"],
        rows,
        title=(
            f"Scaling sweep: MQC gamma={GAMMA} size<={MAX_SIZE} on growing "
            f"community graphs"
        ),
    )
    trend = (
        "widening" if len(ratios) >= 2 and ratios[-1] > ratios[0]
        else "flat/noisy"
    )
    return table + (
        f"\npaper: the maximality gap grows with graph size | measured "
        f"trend across completed scales: {trend} "
        f"({', '.join(f'{r:.1f}x' for r in ratios)})"
    )


def test_scaling_curve(benchmark):
    table = run_once(benchmark, run_experiment)
    emit("scaling_curve", table)
