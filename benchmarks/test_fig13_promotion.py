"""Figure 13: cache hit rates with and without task promotion.

MQC runs with promotion toggled; the hit rate of the shared
set-operation cache is the plotted metric.

Paper shape: promotion lifts hit rates from ~48% to ~73% because the
candidates a VTask computed are reused by the promoted ETask instead
of being recomputed.
"""

from repro.apps import maximal_quasi_cliques
from repro.bench import dataset, dataset_keys, format_table

from _common import emit, run_once

GAMMA = 0.7
MAX_SIZE = 6


def run_experiment() -> str:
    rows = []
    for key in dataset_keys():
        graph = dataset(key)
        with_promo = maximal_quasi_cliques(
            graph, GAMMA, MAX_SIZE, enable_promotion=True
        )
        without = maximal_quasi_cliques(
            graph, GAMMA, MAX_SIZE, enable_promotion=False
        )
        assert with_promo.all_sets() == without.all_sets()
        rows.append(
            (
                key,
                f"{with_promo.stats.cache_hit_rate:.1%}",
                f"{without.stats.cache_hit_rate:.1%}",
                with_promo.stats.promotions,
                with_promo.stats.etasks_canceled,
            )
        )
    return format_table(
        ["dataset", "hit rate (promotion)", "hit rate (no promotion)",
         "promotions", "ETasks canceled"],
        rows,
        title=(
            f"Fig 13: cache hit rates with/without task promotion "
            f"(MQC, gamma={GAMMA}, size<={MAX_SIZE})"
        ),
    )


def test_fig13(benchmark):
    table = run_once(benchmark, run_experiment)
    emit("fig13_promotion", table)
