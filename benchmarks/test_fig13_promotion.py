"""Figure 13: cache hit rates with and without task promotion.

MQC runs with promotion toggled; the hit rate of the shared
set-operation cache is the plotted metric.

Paper shape: promotion lifts hit rates from ~48% to ~73% because the
candidates a VTask computed are reused by the promoted ETask instead
of being recomputed.

Environment knobs (the CI scheduler-smoke job sets these to run the
same experiment under each execution-core scheduler on one dataset):

* ``REPRO_SCHEDULER``: serial (default) / process / workqueue
* ``REPRO_WORKERS``: worker count for parallel schedulers (default 2)
* ``REPRO_DATASETS``: comma-separated dataset keys (default: all)
"""

import os

from repro.apps import maximal_quasi_cliques
from repro.bench import dataset, dataset_keys, format_table

from _common import emit, run_once

GAMMA = 0.7
MAX_SIZE = 6

SCHEDULER = os.environ.get("REPRO_SCHEDULER", "serial")
N_WORKERS = int(os.environ.get("REPRO_WORKERS", "2"))


def _dataset_keys():
    selected = os.environ.get("REPRO_DATASETS")
    if not selected:
        return dataset_keys()
    return [key.strip() for key in selected.split(",") if key.strip()]


def run_experiment() -> str:
    rows = []
    for key in _dataset_keys():
        graph = dataset(key)
        with_promo = maximal_quasi_cliques(
            graph, GAMMA, MAX_SIZE, enable_promotion=True,
            scheduler=SCHEDULER, n_workers=N_WORKERS,
        )
        without = maximal_quasi_cliques(
            graph, GAMMA, MAX_SIZE, enable_promotion=False,
            scheduler=SCHEDULER, n_workers=N_WORKERS,
        )
        assert with_promo.all_sets() == without.all_sets()
        rows.append(
            (
                key,
                f"{with_promo.stats.cache_hit_rate:.1%}",
                f"{without.stats.cache_hit_rate:.1%}",
                with_promo.stats.promotions,
                with_promo.stats.etasks_canceled,
            )
        )
    return format_table(
        ["dataset", "hit rate (promotion)", "hit rate (no promotion)",
         "promotions", "ETasks canceled"],
        rows,
        title=(
            f"Fig 13: cache hit rates with/without task promotion "
            f"(MQC, gamma={GAMMA}, size<={MAX_SIZE}, "
            f"scheduler={SCHEDULER})"
        ),
    )


def test_fig13(benchmark):
    table = run_once(benchmark, run_experiment)
    suffix = "" if SCHEDULER == "serial" else f"_{SCHEDULER}"
    emit(f"fig13_promotion{suffix}", table)
