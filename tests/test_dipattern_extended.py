"""Extended directed-pattern tests: symmetry uniqueness, labels, plans."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns.dipattern import (
    DiPattern,
    di_automorphisms,
    di_plan_for,
    di_symmetry_conditions,
)
from repro.patterns.symmetry import satisfies_conditions


@st.composite
def dipattern_strategy(draw, max_vertices: int = 4):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    # weakly-connected via random tree + random orientations + extras
    arcs = set()
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        if draw(st.booleans()):
            arcs.add((parent, v))
        else:
            arcs.add((v, parent))
    possible = [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and (u, v) not in arcs
    ]
    if possible:
        extras = draw(
            st.lists(st.sampled_from(possible), unique=True, max_size=4)
        )
        arcs.update(extras)
    return DiPattern(n, arcs)


class TestDirectedSymmetry:
    @given(dipattern_strategy())
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_representative(self, pattern):
        """The GraphZero construction transfers to directed groups."""
        conditions = di_symmetry_conditions(pattern)
        auts = di_automorphisms(pattern)
        k = pattern.num_vertices
        assignment = list(range(10, 10 + k))
        images = {
            tuple(assignment[sigma[v]] for v in range(k)) for sigma in auts
        }
        satisfying = [
            a for a in images if satisfies_conditions(a, conditions)
        ]
        assert len(satisfying) == 1

    def test_asymmetric_pattern_no_conditions(self):
        ffl = DiPattern(3, [(0, 1), (0, 2), (1, 2)])
        assert di_symmetry_conditions(ffl) == []

    def test_bidirectional_edge_symmetric(self):
        both = DiPattern(2, [(0, 1), (1, 0)])
        assert len(di_automorphisms(both)) == 2
        assert di_symmetry_conditions(both) == [(0, 1)]


class TestDirectedPatternValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiPattern(2, [(0, 0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DiPattern(2, [(0, 5)])

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            DiPattern(2, [(0, 1)], labels=[1])

    def test_antiparallel_arcs_allowed(self):
        p = DiPattern(2, [(0, 1), (1, 0)])
        assert p.has_arc(0, 1) and p.has_arc(1, 0)

    def test_plan_memoized(self):
        p = DiPattern(3, [(0, 1), (1, 2)])
        assert di_plan_for(p) is di_plan_for(DiPattern(3, [(0, 1), (1, 2)]))

    def test_equality_and_hash(self):
        a = DiPattern(3, [(0, 1), (1, 2)])
        b = DiPattern(3, [(1, 2), (0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != DiPattern(3, [(1, 0), (1, 2)])

    @given(dipattern_strategy())
    @settings(max_examples=30, deadline=None)
    def test_plan_anchors_cover_all_arcs(self, pattern):
        """Every pattern arc is enforced by exactly one anchor entry."""
        plan = di_plan_for(pattern)
        enforced = 0
        for i in range(plan.num_steps):
            enforced += len(plan.out_anchors[i]) + len(plan.in_anchors[i])
        assert enforced == len(pattern.arcs)
