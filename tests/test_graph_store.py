"""Versioned graph store: identity, derived caching, invalidation.

Covers the ``repro.graph.store`` subsystem end to end: content
fingerprints (including the count-string collision the old
``GraphStats.version`` had), the ``DerivedCache`` protocol and its
counters, cross-object artifact sharing (same content ⇒ same cached
index/adjacency-set/stats objects, including across pickle round
trips), ``MutationBatch``/``apply_mutation`` semantics, the
``GraphStore`` registry, and the mutation-equivalence property: mining
a batch-mutated graph is bit-identical to mining the same graph
rebuilt from scratch, on every scheduler, with stale derived artifacts
provably evicted.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import maximal_quasi_cliques
from repro.apps.mqc import build_mqc_engine
from repro.apps.nsq import nested_subgraph_query, paper_query_triangles
from repro.graph import Graph, erdos_renyi
from repro.graph.store import (
    PATTERN_SCOPE,
    DerivedCache,
    GraphStore,
    MutationBatch,
    apply_mutation,
    derived_cache,
    format_version_key,
    graph_fingerprint,
    graph_store,
    reset_default_store,
)
from repro.mining import SetOperationCache

SCHEDULERS = ("serial", "process", "workqueue")


@pytest.fixture(autouse=True)
def fresh_store():
    """Isolate every test from globally accumulated store state."""
    reset_default_store()
    yield
    reset_default_store()


def _mine_mqc(graph, scheduler=None):
    return maximal_quasi_cliques(
        graph, gamma=0.8, max_size=4, min_size=3, scheduler=scheduler
    )


def _rebuilt(graph):
    """The same content built from scratch (no structure sharing)."""
    return Graph(
        [list(graph.neighbors(v)) for v in graph.vertices()],
        labels=graph.labels,
        name=graph.name,
    )


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------


class TestFingerprint:
    def test_content_addressed_not_name_addressed(self):
        rows = [[1], [0, 2], [1]]
        a = Graph(rows, name="left")
        b = Graph(rows, name="right")
        assert a.fingerprint == b.fingerprint
        assert a.version_key == "left@" + a.fingerprint[:12]
        assert b.version_key == "right@" + a.fingerprint[:12]
        assert a.version_key == format_version_key("left", a.fingerprint)

    def test_same_counts_different_structure_distinct(self):
        # The old GraphStats.version ("name:4v:2e:0l") collided here:
        # both graphs have 4 vertices, 2 edges, 0 labels.
        matching = Graph([[1], [0], [3], [2]], name="g")
        path = Graph([[1], [0, 2], [1], []], name="g")
        assert matching.fingerprint != path.fingerprint
        sa, sb = matching.stats_summary(), path.stats_summary()
        assert sa.size_signature == sb.size_signature  # the collision
        assert sa.version != sb.version  # the fix

    def test_labels_change_fingerprint(self):
        rows = [[1], [0]]
        assert (
            graph_fingerprint([(1,), (0,)], None)
            != graph_fingerprint([(1,), (0,)], (0, 1))
        )
        assert Graph(rows).fingerprint != Graph(rows, labels=[0, 1]).fingerprint

    def test_stats_carries_fingerprint_and_alias(self):
        g = erdos_renyi(12, 0.4, seed=3)
        stats = g.stats_summary()
        assert stats.fingerprint == g.fingerprint
        assert stats.version == g.version_key
        d = stats.to_dict()
        assert d["fingerprint"] == g.fingerprint
        assert d["version_alias"] == stats.size_signature
        assert ":" in stats.size_signature  # old human-readable shape


# ----------------------------------------------------------------------
# DerivedCache protocol
# ----------------------------------------------------------------------


class TestDerivedCache:
    def test_miss_then_hit_builds_once(self):
        cache = DerivedCache()
        calls = []
        build = lambda: calls.append(1) or "artifact"  # noqa: E731
        assert cache.get_or_build("g@1", "stats", build) == "artifact"
        assert cache.get_or_build("g@1", "stats", build) == "artifact"
        assert calls == [1]
        assert cache.counters() == {
            "hits": 1, "misses": 1, "invalidations": 0,
        }

    def test_invalidate_version_counts_entries(self):
        cache = DerivedCache()
        cache.get_or_build("g@1", "a", dict)
        cache.get_or_build("g@1", "b", dict)
        cache.get_or_build("g@2", "a", dict)
        assert cache.invalidate("g@1") == 2
        assert cache.counters()["invalidations"] == 2
        assert cache.versions() == ["g@2"]

    def test_invalidate_single_artifact(self):
        cache = DerivedCache()
        cache.get_or_build("g@1", "a", dict)
        cache.get_or_build("g@1", "b", dict)
        assert cache.invalidate("g@1", artifact_key="a") == 1
        assert cache.artifact_count("g@1") == 1

    def test_note_invalidations_folds_external_evictions(self):
        cache = DerivedCache()
        cache.note_invalidations(7)
        assert cache.counters()["invalidations"] == 7

    def test_version_lru_eviction(self):
        cache = DerivedCache(max_versions=2)
        cache.get_or_build("g@1", "a", dict)
        cache.get_or_build("g@2", "a", dict)
        cache.get_or_build("g@3", "a", dict)
        assert "g@1" not in cache.versions()
        assert cache.counters()["invalidations"] == 1

    def test_pattern_scope_survives_eviction(self):
        cache = DerivedCache(max_versions=1)
        memo = cache.get_or_build(PATTERN_SCOPE, ("orders", 1), dict)
        cache.get_or_build("g@1", "a", dict)
        cache.get_or_build("g@2", "a", dict)
        assert PATTERN_SCOPE in cache.versions()
        assert cache.get_or_build(PATTERN_SCOPE, ("orders", 1), dict) is memo


# ----------------------------------------------------------------------
# Cross-object and cross-pickle artifact sharing
# ----------------------------------------------------------------------


class TestArtifactSharing:
    def test_same_content_graphs_share_artifacts(self):
        g1 = erdos_renyi(18, 0.3, seed=5)
        g2 = _rebuilt(g1)
        idx = g1.kernel_index("bitset")
        assert g2.kernel_index("bitset") is idx
        assert g2.neighbor_set(0) is g1.neighbor_set(0)
        assert g2.stats_summary() is g1.stats_summary()

    def test_pickle_reattaches_instead_of_rebuilding(self):
        # Satellite regression: shards arriving in a worker must
        # re-attach to the already-built index for their graph
        # version, not rebuild one per shard.
        g = erdos_renyi(18, 0.3, seed=6)
        idx = g.kernel_index("bitset")
        cache = derived_cache()
        builds_before = cache.counters()["misses"]
        blob = pickle.dumps(g)
        shard_a = pickle.loads(blob)
        shard_b = pickle.loads(blob)
        assert shard_a.fingerprint == g.fingerprint
        assert shard_a.kernel_index("bitset") is idx
        assert shard_b.kernel_index("bitset") is idx
        # Zero index rebuilds across the two simulated shards.
        assert cache.counters()["misses"] == builds_before

    def test_two_worker_process_run_matches_serial(self):
        g = erdos_renyi(22, 0.3, seed=7)
        serial = _mine_mqc(g, scheduler="serial")
        procs = maximal_quasi_cliques(
            g, gamma=0.8, max_size=4, min_size=3,
            scheduler="process", n_workers=2,
        )
        assert procs.all_sets() == serial.all_sets()


# ----------------------------------------------------------------------
# MutationBatch / apply_mutation
# ----------------------------------------------------------------------


class TestMutationBatch:
    def test_apply_matches_from_scratch_rebuild(self):
        g = erdos_renyi(10, 0.35, seed=11)
        u, v = next(
            (a, b) for a in g.vertices() for b in g.neighbors(a) if a < b
        )
        batch = MutationBatch.of(
            add_edges=[(0, 9), (3, 7)], remove_edges=[(u, v)]
        )
        mutated = apply_mutation(g, batch)
        edges = {
            (min(a, b), max(a, b))
            for a in g.vertices()
            for b in g.neighbors(a)
        }
        edges -= {(u, v)}
        edges |= {(0, 9), (3, 7)}
        expected_rows = [[] for _ in g.vertices()]
        for a, b in edges:
            expected_rows[a].append(b)
            expected_rows[b].append(a)
        expected = Graph([sorted(r) for r in expected_rows], name=g.name)
        assert mutated.fingerprint == expected.fingerprint

    def test_set_semantics_idempotent(self):
        g = Graph([[1], [0], []])
        batch = MutationBatch.of(add_edges=[(0, 1)], remove_edges=[(1, 2)])
        assert apply_mutation(g, batch).fingerprint == g.fingerprint

    def test_self_loop_rejected(self):
        g = Graph([[1], [0]])
        with pytest.raises(ValueError):
            apply_mutation(g, MutationBatch.of(add_edges=[(1, 1)]))

    def test_out_of_range_rejected(self):
        g = Graph([[1], [0]])
        with pytest.raises(ValueError):
            apply_mutation(g, MutationBatch.of(add_edges=[(0, 5)]))

    def test_add_vertices_defaults_label_zero(self):
        g = Graph([[1], [0]], labels=[2, 3])
        grown = apply_mutation(
            g, MutationBatch.of(add_vertices=2, add_edges=[(1, 3)])
        )
        assert grown.num_vertices == 4
        assert grown.labels == (2, 3, 0, 0)
        assert grown.neighbors(3) == (1,)

    def test_structure_sharing_on_untouched_rows(self):
        g = erdos_renyi(12, 0.3, seed=13)
        mutated = apply_mutation(
            g, MutationBatch.of(add_edges=[(0, 11)])
        )
        # Rows not named by the batch are the same tuple objects.
        untouched = [
            v for v in g.vertices()
            if v not in (0, 11)
        ]
        assert untouched
        for v in untouched:
            assert mutated.neighbors(v) is g.neighbors(v)

    def test_empty_batch_is_empty(self):
        assert MutationBatch.of().is_empty
        assert not MutationBatch.of(add_vertices=1).is_empty


# ----------------------------------------------------------------------
# GraphStore registry
# ----------------------------------------------------------------------


class TestGraphStore:
    def test_register_resolve_latest(self):
        store = GraphStore()
        g = erdos_renyi(8, 0.4, seed=17, name="toy")
        gv = store.register(g)
        assert gv.ref == "toy@v1"
        assert store.resolve("toy").graph is g
        assert store.resolve("toy@latest").graph is g
        assert store.resolve("toy@v1").graph is g
        with pytest.raises(KeyError):
            store.resolve("toy@v2")
        with pytest.raises(KeyError):
            store.resolve("elsewhere")

    def test_register_idempotent_on_identical_content(self):
        store = GraphStore()
        g = erdos_renyi(8, 0.4, seed=17)
        first = store.register(g, "toy")
        again = store.register(_rebuilt(g), "toy")
        assert again.version == first.version

    def test_apply_batch_bumps_version_and_invalidates(self):
        cache = DerivedCache()
        store = GraphStore(cache=cache)
        g = erdos_renyi(10, 0.4, seed=19, name="toy")
        store.register(g)
        cache.get_or_build(g.version_key, "probe", dict)
        before = cache.counters()["invalidations"]
        edge = next(
            (u, v) for u in g.vertices() for v in g.neighbors(u) if u < v
        )
        v2 = store.apply_batch("toy", MutationBatch.of(remove_edges=[edge]))
        assert v2.ref == "toy@v2"
        assert v2.fingerprint != g.fingerprint
        assert store.latest("toy").version == 2
        # v1's derived scope was dropped (retain=1 keeps only v2).
        assert cache.counters()["invalidations"] > before
        assert g.version_key not in cache.versions()


# ----------------------------------------------------------------------
# Mutation equivalence: mine(apply_batch(g)) == mine(rebuild(g))
# ----------------------------------------------------------------------


class TestMutationEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_mqc_identical_after_mutation(self, scheduler):
        g = erdos_renyi(20, 0.3, seed=23, name="mut")
        store = graph_store()
        store.register(g, "mut")
        _mine_mqc(g)  # warm derived artifacts for v1
        edge = next(
            (u, v) for u in g.vertices() for v in g.neighbors(u) if u < v
        )
        batch = MutationBatch.of(
            add_edges=[(0, g.num_vertices - 1)], remove_edges=[edge]
        )
        before = derived_cache().counters()["invalidations"]
        mutated = store.apply_batch("mut", batch).graph
        # Stale v1 artifacts were provably evicted, not reused.
        assert derived_cache().counters()["invalidations"] > before
        expected = _mine_mqc(_rebuilt(mutated), scheduler=scheduler)
        actual = _mine_mqc(mutated, scheduler=scheduler)
        assert actual.all_sets() == expected.all_sets()
        assert actual.by_size.keys() == expected.by_size.keys()

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_nsq_identical_after_mutation(self, scheduler):
        g = erdos_renyi(18, 0.35, seed=29, name="mutq")
        p_m, p_plus = paper_query_triangles()
        nested_subgraph_query(g, p_m, p_plus)  # warm v1
        mutated = apply_mutation(
            g, MutationBatch.of(add_edges=[(0, 17), (1, 16)])
        )
        expected = nested_subgraph_query(
            _rebuilt(mutated), p_m, p_plus, scheduler=scheduler
        )
        actual = nested_subgraph_query(
            mutated, p_m, p_plus, scheduler=scheduler
        )
        assert sorted(actual.assignments()) == sorted(expected.assignments())

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(data=st.data())
    def test_mutation_equivalence_property(self, data):
        n = data.draw(st.integers(min_value=4, max_value=12), label="n")
        seed = data.draw(st.integers(min_value=0, max_value=999), label="s")
        g = erdos_renyi(n, 0.4, seed=seed)
        possible = [
            (u, v) for u in range(n) for v in range(u + 1, n)
        ]
        adds = data.draw(
            st.lists(st.sampled_from(possible), max_size=4, unique=True),
            label="adds",
        )
        removes = data.draw(
            st.lists(st.sampled_from(possible), max_size=4, unique=True),
            label="removes",
        )
        batch = MutationBatch.of(add_edges=adds, remove_edges=removes)
        mutated = apply_mutation(g, batch)
        rebuilt = _rebuilt(mutated)
        assert mutated.fingerprint == rebuilt.fingerprint
        assert (
            _mine_mqc(mutated).all_sets() == _mine_mqc(rebuilt).all_sets()
        )
        # Replaying the same batch is a no-op difference only where
        # adds/removes overlap; applying to the mutated graph with
        # empty batch is the identity.
        assert (
            apply_mutation(mutated, MutationBatch.of()).fingerprint
            == mutated.fingerprint
        )


# ----------------------------------------------------------------------
# Version-bound mining caches
# ----------------------------------------------------------------------


class TestVersionBoundCaches:
    def test_set_operation_cache_rebind_reports_drops(self):
        g = erdos_renyi(10, 0.4, seed=31)
        cache = SetOperationCache(graph_version=g.version_key)
        cache.store(frozenset({1}), frozenset({2, 3}))
        cache.store(frozenset({4}), frozenset({5}))
        before = derived_cache().counters()["invalidations"]
        dropped = cache.rebind("other@deadbeef0123")
        assert dropped == 2
        assert cache.graph_version == "other@deadbeef0123"
        assert cache.lookup(frozenset({1})) is None
        assert derived_cache().counters()["invalidations"] == before + 2

    def test_engine_caches_bound_to_graph_version(self):
        from repro.mining import MiningEngine

        g = erdos_renyi(12, 0.4, seed=37)
        engine = MiningEngine(g, adjacency="bitset")
        assert engine.cache.graph_version == g.version_key
        assert engine._task_cache().graph_version == g.version_key


# ----------------------------------------------------------------------
# Zero-copy shared-memory graphs: O(1) pickle payloads
# ----------------------------------------------------------------------


class TestSharedGraphPayloads:
    """While a graph is published to shared memory, every pickle of it
    (and therefore every process-scheduler shard payload) collapses to
    an O(1) segment reference instead of the adjacency arrays."""

    @pytest.fixture(autouse=True)
    def clean_segments(self):
        from repro.graph.shm import shared_graphs, unpublish_all

        yield
        shared_graphs().release_attachments()
        unpublish_all()

    def test_published_pickle_payload_is_constant_size(self):
        from repro.graph.shm import publish_graph, unpublish_graph

        small = erdos_renyi(40, 0.2, seed=3, name="payload-small")
        big = erdos_renyi(600, 0.2, seed=5, name="payload-big")
        plain_small = len(pickle.dumps(small))
        plain_big = len(pickle.dumps(big))
        assert plain_big > 10 * plain_small  # scales with the graph

        publish_graph(small)
        publish_graph(big)
        shared_small = len(pickle.dumps(small))
        shared_big = len(pickle.dumps(big))
        # O(1): a segment reference, independent of graph size.
        assert shared_big < 400
        assert abs(shared_big - shared_small) < 100

        # Unpublishing restores the plain payload.
        assert unpublish_graph(big.fingerprint)
        assert len(pickle.dumps(big)) == plain_big

    def test_round_trip_attaches_and_dedups(self):
        from repro.graph.shm import publish_graph, shm_counters

        graph = erdos_renyi(120, 0.15, seed=7, name="rt")
        publish_graph(graph)
        payload = pickle.dumps(graph)
        before = shm_counters()["attaches"]
        first = pickle.loads(payload)
        second = pickle.loads(payload)
        assert second is first  # one attachment per segment, reused
        assert shm_counters()["attaches"] == before + 1
        assert first.fingerprint == graph.fingerprint
        assert first.labels == graph.labels
        for v in graph.vertices():
            assert first.neighbors(v) == graph.neighbors(v)

    def test_scheduler_shard_payload_ships_no_adjacency(self):
        from repro.core.runtime import ContigraJob
        from repro.exec.scheduler import _share_job_graph

        def shard_bytes(n):
            graph = erdos_renyi(n, 0.2, seed=11, name=f"shard-{n}")
            graph_store().register(graph)
            engine = build_mqc_engine(graph, 0.8, 4)
            job = ContigraJob(engine)
            _share_job_graph(job)  # what every scheduler run invokes
            return len(pickle.dumps(job.shard_payload([0, 1, 2])))

        small, big = shard_bytes(30), shard_bytes(500)
        # The payload carries the engine tables but no per-shard
        # adjacency: growing the graph 16x must not grow the payload.
        assert big < small + 200

    def test_unregistered_graph_is_not_published(self):
        from repro.core.runtime import ContigraJob
        from repro.exec.scheduler import _share_job_graph
        from repro.graph.shm import published_segment

        graph = erdos_renyi(30, 0.2, seed=13, name="unregistered")
        job = ContigraJob(build_mqc_engine(graph, 0.8, 4))
        _share_job_graph(job)
        assert published_segment(graph.fingerprint) is None

    def test_process_scheduler_results_identical_when_shared(self):
        graph = erdos_renyi(18, 0.4, seed=17, name="shared-e2e")
        reference = _mine_mqc(graph).all_sets()
        graph_store().register(graph)
        shared = _mine_mqc(graph, scheduler="process").all_sets()
        assert shared == reference


# ----------------------------------------------------------------------
# Invalidation liveness guard (cross-name / mutate-revert regression)
# ----------------------------------------------------------------------


class TestInvalidationLiveness:
    """``apply_batch`` must spare content keys that any name's retained
    window still holds — the pre-fix code invalidated by one name's
    history alone, dropping artifacts still scoped to a latest
    version elsewhere (or to the revert target of an A→B→A cycle)."""

    def test_two_names_sharing_content_keep_caches_warm(self):
        cache = DerivedCache()
        store = GraphStore(cache=cache)
        g = erdos_renyi(12, 0.35, seed=41, name="shared")
        store.register(g, "a")
        store.register(_rebuilt(g), "b")  # same content, second name
        cache.get_or_build(g.version_key, "probe", dict)
        before = cache.counters()["invalidations"]

        edge = next(
            (u, v) for u in g.vertices() for v in g.neighbors(u) if u < v
        )
        v2 = store.apply_batch("a", MutationBatch.of(remove_edges=[edge]))
        # "a" moved on, but "b" still holds the old content as its
        # latest: the shared artifacts must stay warm.
        assert cache.counters()["invalidations"] == before
        assert cache.peek(g.version_key, "probe") is not None

        # Reverting supersedes v2, whose content no name holds — *that*
        # is invalidated, while the shared key stays live (it is both
        # "b"'s latest and now "a"'s again).
        cache.get_or_build(v2.version_key, "probe", dict)
        v3 = store.apply_batch("a", MutationBatch.of(add_edges=[edge]))
        assert v3.fingerprint == g.fingerprint
        assert cache.counters()["invalidations"] > before
        assert cache.peek(v2.version_key, "probe") is None
        assert cache.peek(g.version_key, "probe") is not None

    def test_mutate_revert_cycle_keeps_caches_warm(self):
        cache = DerivedCache()
        store = GraphStore(derived_retain=2, cache=cache)
        g = erdos_renyi(12, 0.35, seed=43, name="cycle")
        v1 = store.register(g, "x")
        cache.get_or_build(v1.version_key, "probe", dict)
        edge = next(
            (u, v) for u in g.vertices() for v in g.neighbors(u) if u < v
        )
        before = cache.counters()["invalidations"]
        v2 = store.apply_batch("x", MutationBatch.of(remove_edges=[edge]))
        v3 = store.apply_batch("x", MutationBatch.of(add_edges=[edge]))
        assert v3.fingerprint == v1.fingerprint  # A -> B -> A
        # v1's content is the latest content again: still warm.
        assert cache.counters()["invalidations"] == before
        assert cache.peek(v1.version_key, "probe") is not None

        # One more mutation pushes v2 (the one-off B content) out of
        # the retained window: B is dropped, A stays warm throughout.
        non_edge = next(
            (a, b)
            for a in g.vertices()
            for b in range(a + 1, g.num_vertices)
            if b not in g.neighbors(a)
        )
        cache.get_or_build(v2.version_key, "probe", dict)
        store.apply_batch("x", MutationBatch.of(add_edges=[non_edge]))
        assert cache.peek(v2.version_key, "probe") is None
        assert cache.peek(v1.version_key, "probe") is not None

    def test_listener_sees_old_version_before_invalidation(self):
        cache = DerivedCache()
        store = GraphStore(cache=cache)
        g = erdos_renyi(10, 0.4, seed=47, name="evt")
        v1 = store.register(g, "evt")
        cache.get_or_build(v1.version_key, "probe", dict)
        observed = []

        def listener(name, old, new, batch):
            # Fired after registration, before invalidation: the old
            # version's artifacts are still readable.
            observed.append(
                (name, old.ref, new.ref,
                 cache.peek(old.version_key, "probe") is not None)
            )

        non_edge = next(
            (a, b)
            for a in g.vertices()
            for b in range(a + 1, g.num_vertices)
            if b not in g.neighbors(a)
        )
        store.add_listener(listener)
        store.apply_batch("evt", MutationBatch.of(add_edges=[non_edge]))
        assert observed == [("evt", "evt@v1", "evt@v2", True)]
        # ... and afterwards the superseded scope is gone (only "evt"
        # held that content).
        assert cache.peek(v1.version_key, "probe") is None
        store.remove_listener(listener)
        store.remove_listener(listener)  # absent remove is a no-op
        store.apply_batch("evt", MutationBatch.of(remove_edges=[non_edge]))
        assert len(observed) == 1

    def test_failing_listener_does_not_abort_mutation(self):
        store = GraphStore(cache=DerivedCache())
        g = erdos_renyi(8, 0.4, seed=53, name="boom")
        store.register(g, "boom")

        def bad(name, old, new, batch):
            raise RuntimeError("listener crashed")

        edge = next(
            (u, v) for u in g.vertices() for v in g.neighbors(u) if u < v
        )
        store.add_listener(bad)
        entry = store.apply_batch(
            "boom", MutationBatch.of(remove_edges=[edge])
        )
        assert entry.version == 2


# ----------------------------------------------------------------------
# MutationBatch.of validation (malformed-payload regression)
# ----------------------------------------------------------------------


class TestMutationBatchValidation:
    """``MutationBatch.of`` must coerce and validate every field with
    field-level errors — a string or float count from a parsed JSON
    payload used to be stored raw and explode deep inside
    ``apply_mutation``."""

    def test_add_vertices_rejects_string(self):
        with pytest.raises(ValueError, match="add_vertices"):
            MutationBatch.of(add_vertices="3")

    def test_add_vertices_rejects_bool(self):
        with pytest.raises(ValueError, match="add_vertices"):
            MutationBatch.of(add_vertices=True)

    def test_add_vertices_rejects_fractional_float(self):
        with pytest.raises(ValueError, match="add_vertices"):
            MutationBatch.of(add_vertices=2.5)

    def test_add_vertices_accepts_integral_float(self):
        # JSON numbers may decode as floats; 2.0 means 2.
        assert MutationBatch.of(add_vertices=2.0).add_vertices == 2

    def test_add_vertices_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            MutationBatch.of(add_vertices=-1)

    def test_edge_lists_reject_strings_with_indexed_message(self):
        with pytest.raises(ValueError, match=r"add_edges\[0\]"):
            MutationBatch.of(add_edges=["01"])
        with pytest.raises(ValueError, match=r"remove_edges\[1\]"):
            MutationBatch.of(remove_edges=[(0, 1), 7])

    def test_edge_elements_coerced_with_positional_message(self):
        with pytest.raises(ValueError, match=r"add_edges\[0\]\[1\]"):
            MutationBatch.of(add_edges=[(0, "1")])
        with pytest.raises(ValueError, match=r"set_labels\[0\]\[0\]"):
            MutationBatch.of(set_labels=[(1.5, 0)])
        batch = MutationBatch.of(add_edges=[[0.0, 1.0]])
        assert batch.add_edges == ((0, 1),)

    def test_wrong_arity_pairs_rejected(self):
        with pytest.raises(ValueError, match=r"add_edges\[0\]"):
            MutationBatch.of(add_edges=[(0, 1, 2)])
        with pytest.raises(ValueError, match=r"set_labels\[0\]"):
            MutationBatch.of(set_labels=[(1,)])


# ----------------------------------------------------------------------
# Mutate-while-mining: in-flight runs keep their bound snapshot
# ----------------------------------------------------------------------


class TestMutateWhileMining:
    def test_batch_applied_mid_run_does_not_change_bound_graph(self):
        graph = erdos_renyi(20, 0.35, seed=59, name="inflight")
        store = graph_store()
        v1 = store.register(graph, "inflight")
        engine = build_mqc_engine(graph, 0.8, 4)
        reference = engine.run()
        bound_key = v1.version_key

        edge = next(
            (u, v)
            for u in graph.vertices()
            for v in graph.neighbors(u)
            if u < v
        )
        mutated_during_run = []

        def sink(pattern, vertices):
            # The first match triggers a concurrent mutation: the
            # in-flight run must keep mining its bound v1 snapshot.
            if not mutated_during_run:
                entry = store.apply_batch(
                    "inflight", MutationBatch.of(remove_edges=[edge])
                )
                mutated_during_run.append(entry)

        fresh_engine = build_mqc_engine(graph, 0.8, 4)
        result = fresh_engine.run(match_sink=sink)
        assert mutated_during_run, "sink never fired"
        assert store.latest("inflight").version == 2
        # Bound version unchanged, and the result is v1's answer.
        assert fresh_engine.graph.version_key == bound_key
        assert fresh_engine.graph is graph
        assert {
            (p.structure_key(), a) for p, a in result.valid
        } == {(p.structure_key(), a) for p, a in reference.valid}

    def test_batch_applied_mid_run_keeps_shm_lease(self):
        from repro.graph.shm import (
            acquire_graph,
            publish_graph,
            published_segment,
            release_graph,
            shared_graphs,
            unpublish_all,
        )

        graph = erdos_renyi(30, 0.3, seed=61, name="leased")
        store = graph_store()
        store.register(graph, "leased")
        try:
            publish_graph(graph)
            fingerprint = acquire_graph(graph)  # an in-flight run's lease
            assert shared_graphs().lease_count(fingerprint) == 1
            edge = next(
                (u, v)
                for u in graph.vertices()
                for v in graph.neighbors(u)
                if u < v
            )
            store.apply_batch(
                "leased", MutationBatch.of(remove_edges=[edge])
            )
            # The mutation neither released the lease nor unlinked the
            # segment out from under the in-flight run.
            assert shared_graphs().lease_count(fingerprint) == 1
            assert published_segment(fingerprint) is not None
            release_graph(fingerprint)
        finally:
            shared_graphs().release_attachments()
            unpublish_all()


# ----------------------------------------------------------------------
# The CI store-smoke entry point
# ----------------------------------------------------------------------


class TestStoreSmoke:
    def test_run_smoke_counters_move(self):
        from repro.graph.store import run_smoke

        summary = run_smoke()
        assert summary["v1"]["fingerprint"] != summary["v2"]["fingerprint"]
        assert summary["counters"]["misses"] > 0
        assert summary["counters"]["invalidations"] > 0
        assert summary["matches_v1"] > 0
