"""Observability layer: span tracing, metrics, validators, event-bus fixes.

Covers the event-bus blind-spot fixes (forwarding session buses,
cross-process event replay, dead cache-event vocabulary, unknown
cancel kinds, handler isolation) and the ``repro.obs`` layer built on
top of them.  The acceptance property lives in
``TestSchedulerObservabilityEquivalence``: the same seeded workload
produces identical lifecycle event multisets under all three
schedulers, with span trees covering (almost) the whole run.
"""

import json

import pytest

from repro.core import maximality_constraints
from repro.core.runtime import ContigraEngine
from repro.exec import (
    EVENTS,
    INCREMENTAL_EVENTS,
    LIFECYCLE_EVENTS,
    RESILIENCE_EVENTS,
    FaultPlan,
    ProcessShardScheduler,
    RetryPolicy,
    SerialScheduler,
    WorkQueueScheduler,
)
from repro.exec.events import (
    CACHE_HIT,
    CACHE_MISS,
    EventBus,
    EventLog,
    EventRecorder,
    StatsSubscriber,
    replay_events,
)
from repro.graph import erdos_renyi
from repro.graph.store import GraphStore, MutationBatch
from repro.mining.cache import SetOperationCache
from repro.mining.incremental import StandingQuery, SubscriptionRegistry
from repro.mining.stats import ConstraintStats
from repro.obs import (
    MetricsRegistry,
    MetricsSubscriber,
    SpanTracer,
    observed_context,
    validate_chrome_trace,
    validate_prometheus,
)
from repro.patterns import quasi_clique_patterns_up_to


def mqc_constraints(gamma=0.7, max_size=4):
    return maximality_constraints(
        quasi_clique_patterns_up_to(max_size, gamma), induced=True
    )


def observed_run(graph, scheduler, **engine_options):
    """One engine run under ``scheduler`` with full observability on."""
    ctx, tracer, registry = observed_context()
    log = EventLog(ctx.bus)
    engine = ContigraEngine(graph, mqc_constraints(), **engine_options)
    result = engine.run_with(scheduler, ctx=ctx)
    tracer.finalize()
    return result, tracer, registry, log


# ----------------------------------------------------------------------
# Satellite: every declared event name is emitted by some code path
# ----------------------------------------------------------------------


class TestEventVocabularyIsAlive:
    def test_engine_run_emits_every_non_cache_event(self):
        # Dense enough (avg degree >= AUTO_MIN_AVG_DEGREE) that auto
        # engages the kernel tier, so kernel_batch_intersect is alive.
        graph = erdos_renyi(20, 0.9, seed=11)
        _, _, _, log = observed_run(graph, SerialScheduler())
        seen = {name for name, _ in log.records}
        # Cache events need a cache; resilience events need a
        # failure; incremental events need a standing query (their
        # liveness is asserted in tests/test_incremental.py).
        missing = (
            set(EVENTS)
            - seen
            - {CACHE_HIT, CACHE_MISS}
            - set(RESILIENCE_EVENTS)
            - set(INCREMENTAL_EVENTS)
        )
        assert not missing, f"declared but never emitted: {missing}"

    def test_cache_emits_sampled_hit_and_miss_events(self):
        """The previously dead ``cache_hit``/``cache_miss`` vocabulary."""
        bus = EventBus(strict=True)
        log = EventLog(bus)
        cache = SetOperationCache(bus=bus, event_sample=1)
        cache.lookup("k")            # miss
        cache.store("k", (1, 2))
        cache.lookup("k")            # hit
        seen = {name for name, _ in log.records}
        assert CACHE_HIT in seen and CACHE_MISS in seen

    def test_every_event_name_is_emitted_somewhere(self):
        """The regression gate: EVENTS may not contain dead names."""
        graph = erdos_renyi(20, 0.9, seed=11)
        _, _, _, log = observed_run(graph, SerialScheduler())
        seen = {name for name, _ in log.records}
        bus = EventBus()
        cache_log = EventLog(bus)
        cache = SetOperationCache(bus=bus, event_sample=1)
        cache.lookup("k")
        cache.store("k", (1,))
        cache.lookup("k")
        seen |= {name for name, _ in cache_log.records}
        # Resilience events only fire on failures: a degraded chaos run
        # (every attempt crashes) emits retry, failure, and degradation.
        ctx, _, _ = observed_context()
        chaos_log = EventLog(ctx.bus)
        engine = ContigraEngine(graph, mqc_constraints())
        plan = FaultPlan().crash(0, times=10)
        degraded = engine.run_with(
            SerialScheduler(
                retry=RetryPolicy(max_retries=1, backoff_base=0.0),
                on_failure="degrade",
                fault_plan=plan,
            ),
            ctx=ctx,
        )
        assert degraded.incomplete
        seen |= {name for name, _ in chaos_log.records}
        # Incremental events need a standing query: append a disjoint
        # triangle (match_added + delta), then break it
        # (match_retracted).
        inc_store = GraphStore()
        base = erdos_renyi(12, 0.3, seed=5, name="inc")
        inc_store.register(base, "inc")
        registry = SubscriptionRegistry(store=inc_store)
        inc_log = EventLog(registry.bus)
        registry.attach(inc_store)
        try:
            registry.subscribe("inc", StandingQuery.mqc(0.8, 4))
            n = base.num_vertices
            inc_store.apply_batch("inc", MutationBatch.of(
                add_vertices=3,
                add_edges=[(n, n + 1), (n + 1, n + 2), (n, n + 2)],
            ))
            inc_store.apply_batch("inc", MutationBatch.of(
                remove_edges=[(n, n + 1)],
            ))
        finally:
            registry.detach()
        seen |= {name for name, _ in inc_log.records}
        assert seen >= set(EVENTS)

    def test_cache_events_are_sampled_with_counts(self):
        bus = EventBus(strict=True)
        log = EventLog(bus)
        cache = SetOperationCache(bus=bus, event_sample=4)
        for i in range(7):
            cache.lookup(("miss", i))
        assert log.count(CACHE_MISS) == 1
        assert log.records[0][1]["count"] == 4
        # three misses still pending, below the sampling threshold
        assert cache.stats.cache_misses == 7

    def test_event_sample_validation(self):
        with pytest.raises(ValueError):
            SetOperationCache(event_sample=0)

    def test_unobserved_cache_pays_no_events(self):
        cache = SetOperationCache(bus=EventBus(), event_sample=1)
        cache.lookup("k")  # no subscribers: nothing raised, just counted
        assert cache.stats.cache_misses == 1


# ----------------------------------------------------------------------
# Satellite: unknown cancellation kinds are counted, not swallowed
# ----------------------------------------------------------------------


class TestUnknownCancelKinds:
    def test_unknown_kind_lands_in_cancellations_other(self):
        stats = ConstraintStats()
        bus = EventBus(strict=True)
        sub = StatsSubscriber(stats).attach(bus)
        bus.emit("cancel", kind="speculative", count=3)
        bus.emit("cancel", kind="speculative")
        bus.emit("cancel", kind="lateral")
        assert stats.cancellations_other == 4
        assert stats.vtasks_canceled_lateral == 1
        assert sub.unknown_cancel_kinds == {"speculative": 4}

    def test_other_cancellations_merge_and_export(self):
        a, b = ConstraintStats(), ConstraintStats()
        a.cancellations_other = 2
        b.cancellations_other = 3
        a.merge(b)
        assert a.cancellations_other == 5
        assert a.as_dict()["cancellations_other"] == 5


# ----------------------------------------------------------------------
# Satellite: handler exceptions are isolated (strict mode re-raises)
# ----------------------------------------------------------------------


class TestHandlerIsolation:
    def test_raising_handler_is_skipped_by_default(self, caplog):
        bus = EventBus()
        calls = []
        bus.subscribe("match", lambda **kw: 1 / 0)
        bus.subscribe("match", lambda **kw: calls.append(kw))
        with caplog.at_level("ERROR"):
            bus.emit("match", pattern="t")
        assert calls == [{"pattern": "t"}]
        assert any("failed" in r.message for r in caplog.records)

    def test_strict_mode_propagates(self):
        bus = EventBus(strict=True)
        bus.subscribe("match", lambda **kw: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            bus.emit("match")

    def test_raising_handler_does_not_block_forwarding(self):
        parent = EventBus()
        log = EventLog(parent)
        child = EventBus(forward_to=parent)
        child.subscribe("match", lambda **kw: 1 / 0)
        child.emit("match")
        assert log.count("match") == 1

    def test_timed_handler_isolation(self):
        bus = EventBus()
        seen = []

        def bad(event, ts, payload, track):
            raise RuntimeError("boom")

        bus.subscribe_timed(bad)
        bus.subscribe_timed(
            lambda event, ts, payload, track: seen.append(event)
        )
        bus.emit("match")
        assert seen == ["match"]


# ----------------------------------------------------------------------
# Satellite: subscribe_all ordering + EventLog under concurrency
# ----------------------------------------------------------------------


class TestSubscribeAllAndEventLog:
    def test_subscribe_all_preserves_per_event_order(self):
        bus = EventBus(strict=True)
        order = []
        bus.subscribe("match", lambda **kw: order.append("first"))
        bus.subscribe_all(lambda event, **kw: order.append("all"))
        bus.subscribe("match", lambda **kw: order.append("last"))
        bus.emit("match")
        assert order == ["first", "all", "last"]

    def test_subscribe_all_receives_event_name_and_payload(self):
        bus = EventBus(strict=True)
        seen = []
        bus.subscribe_all(lambda event, **kw: seen.append((event, kw)))
        bus.emit("cancel", kind="lateral", count=2)
        assert seen == [("cancel", {"kind": "lateral", "count": 2})]

    def test_unknown_event_subscription_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe("no_such_event", lambda **kw: None)

    def test_event_log_is_consistent_under_workqueue_concurrency(self):
        """Concurrent worker threads share one log through forwarding
        buses; every record must stay a well-formed pair and lifecycle
        counts must equal the serial run's."""
        graph = erdos_renyi(12, 0.5, seed=5)
        _, _, _, serial_log = observed_run(
            graph, SerialScheduler(), enable_promotion=False
        )
        _, _, _, wq_log = observed_run(
            graph, WorkQueueScheduler(n_workers=3), enable_promotion=False
        )
        for record in wq_log.records:
            assert isinstance(record[0], str) and isinstance(record[1], dict)
        assert wq_log.multiset() == serial_log.multiset()


# ----------------------------------------------------------------------
# EventRecorder / replay (cross-scheduler plumbing)
# ----------------------------------------------------------------------


class TestRecorderReplay:
    def test_replay_preserves_payloads_counts_and_track(self):
        worker = EventBus()
        recorder = EventRecorder(worker)
        worker.emit("phase_start", phase="shard", roots=3)
        worker.emit("match", pattern="p")
        worker.emit("phase_end", phase="shard")

        parent = EventBus()
        log = EventLog(parent)
        timed = []
        parent.subscribe_timed(
            lambda event, ts, payload, track: timed.append((event, ts, track))
        )
        n = replay_events(parent, recorder.serialize(), base=100.0, track="s0")
        assert n == 3
        assert log.count("match") == 1
        assert [t for _, _, t in timed] == ["s0", "s0", "s0"]
        # rebased onto the caller's anchor, original spacing preserved
        times = [ts for _, ts, _ in timed]
        assert all(ts >= 100.0 for ts in times)
        assert times == sorted(times)

    def test_forwarding_bus_reaches_parent_subscribers(self):
        """The EngineSession blind spot: external-context sessions used
        to get an isolated bus; now events forward to the caller's."""
        parent = EventBus()
        log = EventLog(parent)
        child = EventBus(forward_to=parent)
        assert child.has_subscribers("match")
        child.emit("match")
        assert log.count("match") == 1


# ----------------------------------------------------------------------
# SpanTracer
# ----------------------------------------------------------------------


class TestSpanTracer:
    def feed(self, tracer, events):
        for event, ts, payload, track in events:
            tracer.on_event(event, ts, payload, track)

    def test_nesting_durations_and_instants(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 0.0, {"phase": "run"}, None),
            ("phase_start", 1.0, {"phase": "pattern", "pattern": "p"}, None),
            ("match", 1.5, {}, None),
            ("kernel_intersect", 1.6, {"count": 5}, None),
            ("phase_end", 2.0, {"phase": "pattern"}, None),
            ("phase_end", 3.0, {"phase": "run"}, None),
        ])
        tracer.finalize()
        assert len(tracer.roots) == 1
        run = tracer.roots[0]
        assert run.name == "run" and run.duration == pytest.approx(3.0)
        (pattern,) = run.children
        assert pattern.duration == pytest.approx(1.0)
        assert pattern.events == {"match": 1, "kernel_intersect": 5}
        assert tracer.coverage() == pytest.approx(1.0)
        assert tracer.event_totals() == {"match": 1, "kernel_intersect": 5}

    def test_tracks_are_independent_trees(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 0.0, {"phase": "run"}, None),
            ("phase_start", 0.1, {"phase": "shard"}, "shard-0"),
            ("phase_start", 0.1, {"phase": "shard"}, "shard-1"),
            ("phase_end", 0.9, {"phase": "shard"}, "shard-0"),
            ("phase_end", 0.8, {"phase": "shard"}, "shard-1"),
            ("phase_end", 1.0, {"phase": "run"}, None),
        ])
        tracer.finalize()
        tracks = sorted(span.track for span in tracer.roots)
        assert tracks == ["main", "shard-0", "shard-1"]

    def test_finalize_closes_open_spans(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 0.0, {"phase": "run"}, None),
            ("match", 2.0, {}, None),
        ])
        tracer.finalize()
        assert tracer.roots[0].end == 2.0

    def test_unmatched_end_is_tolerated(self):
        tracer = SpanTracer()
        self.feed(tracer, [("phase_end", 1.0, {"phase": "run"}, None)])
        tracer.finalize()
        assert tracer.roots == []

    def test_orphan_events_are_reported(self):
        tracer = SpanTracer()
        self.feed(tracer, [("match", 1.0, {}, None)])
        assert tracer.orphan_events == {"match": 1}
        assert "outside spans" in tracer.render()

    def test_coverage_reflects_uncovered_gaps(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 0.0, {"phase": "run"}, None),
            ("phase_end", 1.0, {"phase": "run"}, None),
            ("phase_start", 9.0, {"phase": "run"}, None),
            ("phase_end", 10.0, {"phase": "run"}, None),
        ])
        assert tracer.coverage() == pytest.approx(0.2)

    def test_chrome_export_is_valid_and_scaled(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 10.0, {"phase": "run"}, None),
            ("phase_end", 10.5, {"phase": "run"}, None),
        ])
        tracer.finalize()
        doc = tracer.to_chrome()
        assert validate_chrome_trace(json.dumps(doc)) == []
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["ts"] == 0.0
        assert spans[0]["dur"] == pytest.approx(0.5e6)

    def test_render_tree_shape(self):
        tracer = SpanTracer()
        self.feed(tracer, [
            ("phase_start", 0.0, {"phase": "run"}, None),
            ("phase_start", 0.1, {"phase": "pattern", "pattern": "p"}, None),
            ("phase_end", 0.2, {"phase": "pattern"}, None),
            ("phase_end", 0.3, {"phase": "run"}, None),
        ])
        tracer.finalize()
        text = tracer.render()
        assert "[main]" in text
        assert text.index("run") < text.index("pattern")
        assert "pattern=p" in text


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc()
        registry.gauge("workers").set(3)
        hist = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.to_prometheus()
        assert validate_prometheus(text) == []
        assert "runs_total 1" in text
        assert "workers 3" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_count 3" in text
        snap = registry.snapshot()
        assert snap["runs_total"] == 1
        assert snap["latency_seconds"]["count"] == 3

    def test_labeled_series_share_one_family(self):
        registry = MetricsRegistry()
        registry.counter("events_total", labels={"event": "a"}).inc(2)
        registry.counter("events_total", labels={"event": "b"}).inc(3)
        text = registry.to_prometheus()
        assert text.count("# TYPE events_total counter") == 1
        assert 'events_total{event="a"} 2' in text
        assert validate_prometheus(text) == []

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(1.0, 0.1))

    def test_subscriber_maps_events_and_phase_durations(self):
        registry = MetricsRegistry()
        sub = MetricsSubscriber(registry)
        sub.on_event("phase_start", 1.0, {"phase": "align"}, None)
        sub.on_event("match", 1.2, {}, None)
        sub.on_event("cancel", 1.3, {"kind": "lateral", "count": 2}, None)
        sub.on_event("cache_hit", 1.4, {"count": 64}, None)
        sub.on_event("phase_end", 1.5, {"phase": "align"}, None)
        snap = registry.snapshot()
        assert snap['repro_events_total{event="match"}'] == 1
        assert snap["repro_matches_total"] == 1
        assert snap['repro_cancellations_total{kind="lateral"}'] == 2
        assert snap['repro_cache_operations_total{outcome="hit"}'] == 64
        duration = snap['repro_phase_duration_seconds{phase="align"}']
        assert duration["count"] == 1
        assert duration["sum"] == pytest.approx(0.5)

    def test_subscriber_keeps_replay_tracks_apart(self):
        registry = MetricsRegistry()
        sub = MetricsSubscriber(registry)
        sub.on_event("phase_start", 0.0, {"phase": "shard"}, "s0")
        sub.on_event("phase_start", 0.0, {"phase": "shard"}, "s1")
        sub.on_event("phase_end", 1.0, {"phase": "shard"}, "s0")
        sub.on_event("phase_end", 2.0, {"phase": "shard"}, "s1")
        duration = registry.snapshot()[
            'repro_phase_duration_seconds{phase="shard"}'
        ]
        assert duration["count"] == 2
        assert duration["sum"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Validators (negative cases)
# ----------------------------------------------------------------------


class TestValidators:
    def test_chrome_rejects_garbage_and_bad_events(self):
        assert validate_chrome_trace("{nope") != []
        assert validate_chrome_trace('{"a": 1}') != []
        bad = json.dumps({"traceEvents": [{"name": "x"}]})
        assert any("ph" in p for p in validate_chrome_trace(bad))
        bad = json.dumps(
            {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}
        )
        assert any("dur" in p for p in validate_chrome_trace(bad))

    def test_prometheus_rejects_malformed_samples(self):
        assert validate_prometheus("{weird") != []
        assert validate_prometheus("metric_a not_a_number") != []
        bad_hist = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="0.1"} 5',
            'h_bucket{le="1"} 3',       # not cumulative
            'h_bucket{le="+Inf"} 5',
            "h_sum 1", "h_count 5",
        ])
        assert any(
            "cumulative" in p for p in validate_prometheus(bad_hist)
        )
        no_inf = "\n".join([
            "# TYPE h histogram",
            'h_bucket{le="1"} 3',
            "h_sum 1", "h_count 3",
        ])
        assert any("+Inf" in p for p in validate_prometheus(no_inf))


# ----------------------------------------------------------------------
# Acceptance property: scheduler-independent observability
# ----------------------------------------------------------------------


class TestSchedulerObservabilityEquivalence:
    """For the same seeded workload, all three schedulers must deliver
    identical lifecycle event multisets (zero events lost at shard
    merge) and span trees covering >=95% of the observed run."""

    SEEDS = (0, 1, 2, 3, 4, 5)

    def make_schedulers(self):
        return (
            ("serial", SerialScheduler()),
            ("process", ProcessShardScheduler(n_workers=2)),
            ("workqueue", WorkQueueScheduler(n_workers=3)),
        )

    def test_lifecycle_multisets_and_coverage(self):
        for seed in self.SEEDS:
            graph = erdos_renyi(9 + (seed % 3), 0.4, seed=seed)
            reference = None
            for name, scheduler in self.make_schedulers():
                result, tracer, registry, log = observed_run(
                    graph, scheduler, enable_promotion=False
                )
                multiset = log.multiset()
                if reference is None:
                    reference = (multiset, len(result.valid))
                else:
                    assert multiset == reference[0], (
                        f"seed {seed}, scheduler {name}: "
                        f"{multiset} != {reference[0]}"
                    )
                    assert len(result.valid) == reference[1]
                assert tracer.coverage() >= 0.95, (
                    f"seed {seed}, scheduler {name}: "
                    f"coverage {tracer.coverage()}"
                )
                # the metrics view agrees with the raw log
                snapshot = registry.snapshot()
                for event in LIFECYCLE_EVENTS:
                    key = f'repro_events_total{{event="{event}"}}'
                    assert snapshot.get(key, 0) == multiset.get(event, 0)

    def test_exports_validate_for_every_scheduler(self):
        graph = erdos_renyi(10, 0.4, seed=7)
        for name, scheduler in self.make_schedulers():
            _, tracer, registry, _ = observed_run(graph, scheduler)
            assert validate_chrome_trace(
                json.dumps(tracer.to_chrome())
            ) == [], name
            assert validate_prometheus(registry.to_prometheus()) == [], name

    def test_unobserved_run_has_no_subscribers_overhead(self):
        """Without observers the context reports unobserved, so the
        phase/emit hot paths stay behind their gates."""
        from repro.exec import TaskContext

        ctx = TaskContext.create()
        assert not ctx.observed
        assert not ctx.bus.has_subscribers("match")
