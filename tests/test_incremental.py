"""Standing queries and delta-driven re-exploration.

Covers ``repro.mining.incremental`` bottom-up: the touched-vertex
frontier, the pattern radius, BFS region expansion over the union
adjacency, the ``SubscriptionRegistry`` lifecycle (baseline seeding,
store-listener wiring, event emission, scratch fallback, metrics),
and — the anchor — the delta-equivalence property oracle: for random
(graph, batch) pairs, the incremental added/retracted sets must equal
the set-diff of scratch re-mines of the two versions, under all three
schedulers.
"""

import random

import pytest

from repro.exec.events import DELTA, MATCH_ADDED, MATCH_RETRACTED
from repro.graph import Graph, erdos_renyi
from repro.graph.store import (
    MutationBatch,
    derived_cache,
    graph_store,
    reset_default_store,
)
from repro.mining.incremental import (
    StandingQuery,
    SubscriptionRegistry,
    _index_of,
    _run_region,
    delta_frontier,
    expand_frontier,
    pattern_radius,
    scratch_index,
)
from repro.obs.metrics import MetricsRegistry

SCHEDULERS = (None, "process", "workqueue")


@pytest.fixture(autouse=True)
def fresh_store():
    reset_default_store()
    yield
    reset_default_store()


def _registry(**kwargs):
    reg = SubscriptionRegistry(**kwargs)
    reg.attach(graph_store())
    return reg


def _triangle_batch(n):
    """Append a disjoint triangle: a guaranteed new maximal QC."""
    return MutationBatch.of(
        add_vertices=3, add_edges=[(n, n + 1), (n, n + 2), (n + 1, n + 2)]
    )


# ----------------------------------------------------------------------
# Delta planning units
# ----------------------------------------------------------------------


class TestDeltaFrontier:
    def test_covers_edges_labels_and_appended_vertices(self):
        batch = MutationBatch.of(
            add_edges=[(0, 3)],
            remove_edges=[(5, 6)],
            set_labels=[(8, 1)],
            add_vertices=2,
        )
        assert delta_frontier(batch, 10) == frozenset(
            {0, 3, 5, 6, 8, 10, 11}
        )

    def test_empty_batch_has_empty_frontier(self):
        assert delta_frontier(MutationBatch.of(), 10) == frozenset()


class TestPatternRadius:
    def test_mqc_radius_is_largest_pattern_minus_one(self):
        query = StandingQuery.mqc(0.8, 4)
        cs = query.constraint_set
        sizes = [p.num_vertices for p in cs.patterns]
        sizes += [c.p_plus.num_vertices for c in cs.all_constraints]
        assert query.radius == pattern_radius(cs) == max(sizes) - 1
        assert query.radius >= 3  # at least max_size - 1

    def test_radius_floor_is_one(self):
        from repro.core.constraints import ConstraintSet

        assert pattern_radius(ConstraintSet([], [])) == 1


class TestExpandFrontier:
    def _path(self, n):
        rows = [[] for _ in range(n)]
        for v in range(n - 1):
            rows[v].append(v + 1)
            rows[v + 1].append(v)
        return Graph([sorted(r) for r in rows])

    def test_bfs_hops_on_a_path(self):
        g = self._path(6)
        assert expand_frontier({0}, 2, g, g) == frozenset({0, 1, 2})
        assert expand_frontier({3}, 1, g, g) == frozenset({2, 3, 4})
        assert expand_frontier({0}, 0, g, g) == frozenset({0})

    def test_union_adjacency_reaches_through_removed_edges(self):
        old = self._path(4)
        new = Graph([[], [2], [1, 3], [2]])  # edge 0-1 removed
        # From 0 the old rows still carry reach to the destroyed match.
        assert 1 in expand_frontier({0}, 1, old, new)

    def test_appended_vertices_use_new_rows_only(self):
        old = self._path(3)
        new = Graph([[1], [0, 2], [1, 3], [2]])  # vertex 3 appended
        region = expand_frontier({3}, 1, old, new)
        assert region == frozenset({2, 3})

    def test_out_of_range_seeds_are_dropped(self):
        g = self._path(3)
        assert expand_frontier({99}, 2, g, g) == frozenset()


class TestRegionMining:
    def test_full_root_universe_equals_unrestricted_run(self):
        g = erdos_renyi(16, 0.35, seed=3)
        query = StandingQuery.mqc(0.8, 4)
        full = scratch_index(g, query)
        restricted = _index_of(
            _run_region(query, g, list(g.vertices()))
        )
        assert restricted.keys() == full.keys()

    def test_lazy_reexport_from_mining_package(self):
        import repro.mining as mining
        from repro.mining import incremental

        assert mining.SubscriptionRegistry is incremental.SubscriptionRegistry
        assert mining.delta_frontier is incremental.delta_frontier
        with pytest.raises(AttributeError):
            mining.not_a_real_symbol


# ----------------------------------------------------------------------
# SubscriptionRegistry lifecycle
# ----------------------------------------------------------------------


class TestSubscriptionRegistry:
    def test_subscribe_seeds_baseline_index(self):
        g = erdos_renyi(18, 0.3, seed=9, name="reg")
        graph_store().register(g, "reg")
        reg = _registry()
        query = StandingQuery.mqc(0.8, 4)
        sub = reg.subscribe("reg", query, tenant="t")
        assert sub.matches == len(scratch_index(g, query))
        assert sub.last_version_key == g.version_key
        assert len(reg) == 1
        listed = reg.subscriptions()
        assert [s.id for s in listed] == [sub.id]
        assert listed[0].to_dict()["tenant"] == "t"

    def test_subscribe_unknown_name_raises(self):
        with pytest.raises(KeyError):
            _registry().subscribe("ghost", StandingQuery.mqc(0.8, 4))

    def test_delta_adds_then_retracts_the_appended_triangle(self):
        g = erdos_renyi(18, 0.3, seed=9, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()
        updates = []
        sub = reg.subscribe(
            "reg", StandingQuery.mqc(0.8, 4), sink=updates.append
        )
        baseline = sub.matches
        n = g.num_vertices

        store.apply_batch("reg", _triangle_batch(n))
        grow = updates[-1]
        assert grow.mode == "delta"
        assert grow.frontier_size == 3
        triangle = (n, n + 1, n + 2)
        assert any(a == triangle for _, a in grow.added)
        assert not grow.retracted
        assert sub.matches == baseline + len(grow.added)

        # Retraction is an index lookup on the cached old version —
        # mode stays "delta", and the vanished triangle is reported.
        store.apply_batch(
            "reg", MutationBatch.of(remove_edges=[(n, n + 1)])
        )
        shrink = updates[-1]
        assert shrink.mode == "delta"
        assert any(a == triangle for _, a in shrink.retracted)
        assert sub.deltas == 2
        assert sub.added_total >= 1
        assert sub.retracted_total >= 1

    def test_events_emitted_on_bus(self):
        g = erdos_renyi(18, 0.3, seed=9, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()
        sub = reg.subscribe("reg", StandingQuery.mqc(0.8, 4))
        seen = {MATCH_ADDED: [], MATCH_RETRACTED: [], DELTA: []}
        for event in seen:
            reg.bus.subscribe(
                event,
                lambda _event=event, **payload: seen[_event].append(payload),
            )
        n = g.num_vertices
        store.apply_batch("reg", _triangle_batch(n))
        assert seen[MATCH_ADDED]
        added = seen[MATCH_ADDED][0]
        assert added["subscription"] == sub.id
        assert added["graph"] == "reg"
        assert sorted(added["vertices"]) == [n, n + 1, n + 2]
        assert len(seen[DELTA]) == 1
        assert seen[DELTA][0]["mode"] == "delta"
        store.apply_batch(
            "reg", MutationBatch.of(remove_edges=[(n, n + 1)])
        )
        assert seen[MATCH_RETRACTED]
        assert len(seen[DELTA]) == 2

    def test_evicted_index_degrades_to_scratch_not_wrong(self):
        g = erdos_renyi(18, 0.3, seed=9, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()
        updates = []
        sub = reg.subscribe(
            "reg", StandingQuery.mqc(0.8, 4), sink=updates.append
        )
        # Simulate cache pressure: the old version's index is gone.
        derived_cache().invalidate(
            g.version_key, ("standing_matches", sub.id)
        )
        n = g.num_vertices
        store.apply_batch("reg", _triangle_batch(n))
        update = updates[-1]
        assert update.mode == "scratch"
        assert any(a == (n, n + 1, n + 2) for _, a in update.added)

    def test_empty_effective_batch_is_noop(self):
        g = erdos_renyi(12, 0.3, seed=5, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()
        reg.subscribe("reg", StandingQuery.mqc(0.8, 4))
        latest = store.latest("reg")
        updates = reg.on_batch("reg", latest, latest, MutationBatch.of())
        assert [u.mode for u in updates] == ["noop"]
        assert not updates[0].added and not updates[0].retracted

    def test_unsubscribe_and_detach_stop_delivery(self):
        g = erdos_renyi(12, 0.3, seed=5, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()
        updates = []
        sub = reg.subscribe(
            "reg", StandingQuery.mqc(0.8, 4), sink=updates.append
        )
        assert reg.unsubscribe(sub.id)
        assert not reg.unsubscribe(sub.id)
        with pytest.raises(KeyError):
            reg.get(sub.id)
        store.apply_batch("reg", _triangle_batch(g.num_vertices))
        assert updates == []
        # Re-attach is idempotent (no double delivery), detach is final.
        reg.attach(store)
        reg.attach(store)
        sub2 = reg.subscribe(
            "reg", StandingQuery.mqc(0.8, 4), sink=updates.append
        )
        n2 = store.latest("reg").graph.num_vertices
        store.apply_batch("reg", _triangle_batch(n2))
        assert len(updates) == 1
        reg.detach()
        store.apply_batch(
            "reg", MutationBatch.of(remove_edges=[(n2, n2 + 1)])
        )
        assert len(updates) == 1
        assert reg.get(sub2.id).deltas == 1

    def test_failing_sink_is_isolated(self):
        g = erdos_renyi(12, 0.3, seed=5, name="reg")
        store = graph_store()
        store.register(g, "reg")
        reg = _registry()

        def bad_sink(update):
            raise RuntimeError("subscriber crashed")

        sub = reg.subscribe("reg", StandingQuery.mqc(0.8, 4), sink=bad_sink)
        # The mutation path must survive the broken subscriber.
        entry = store.apply_batch("reg", _triangle_batch(g.num_vertices))
        assert entry.version == 2
        assert reg.get(sub.id).deltas == 1

    def test_metrics_observed_per_delta(self):
        g = erdos_renyi(12, 0.3, seed=5, name="reg")
        store = graph_store()
        store.register(g, "reg")
        registry = MetricsRegistry()
        reg = _registry(metrics=registry)
        reg.subscribe("reg", StandingQuery.mqc(0.8, 4))
        store.apply_batch("reg", _triangle_batch(g.num_vertices))
        text = registry.to_prometheus()
        assert "repro_incremental_frontier_size" in text
        assert "repro_incremental_revalidated_matches" in text
        assert "repro_incremental_delta_seconds" in text
        assert "repro_incremental_matches_added" in text
        assert "repro_incremental_matches_retracted" in text


# ----------------------------------------------------------------------
# The property oracle: incremental == set-diff of scratch re-mines
# ----------------------------------------------------------------------


def _random_batch(rng, graph):
    """A random structural batch guaranteed to change the graph."""
    n = graph.num_vertices
    edges = sorted(
        (u, v) for u in graph.vertices() for v in graph.neighbors(u) if u < v
    )
    non_edges = sorted(
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if v not in graph.neighbors(u)
    )
    removes = rng.sample(edges, k=min(len(edges), rng.randint(1, 2)))
    adds = rng.sample(non_edges, k=min(len(non_edges), rng.randint(0, 2)))
    grow = rng.random() < 0.4
    if grow:
        # A vertex appended with edges into the existing graph.
        anchors = rng.sample(range(n), k=min(n, 3))
        adds = adds + [(a, n) for a in anchors]
    return MutationBatch.of(
        add_edges=adds, remove_edges=removes, add_vertices=1 if grow else 0
    )


class TestDeltaEquivalenceOracle:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_incremental_matches_scratch_setdiff(self, scheduler):
        rng = random.Random(0xC0117A6)
        g = erdos_renyi(20, 0.3, seed=41, name="dyn")
        store = graph_store()
        store.register(g, "dyn")
        query = StandingQuery.mqc(
            0.75, 4, scheduler=scheduler, n_workers=2
        )
        oracle = StandingQuery.mqc(0.75, 4)  # serial scratch re-mines
        reg = _registry()
        updates = []
        sub = reg.subscribe("dyn", query, sink=updates.append)
        trials = 4 if scheduler is None else 2
        for _ in range(trials):
            old = store.latest("dyn")
            batch = _random_batch(rng, old.graph)
            new = store.apply_batch("dyn", batch)
            assert new is not old, "random batch must mutate"
            update = updates[-1]
            old_idx = scratch_index(old.graph, oracle)
            new_idx = scratch_index(new.graph, oracle)
            expected_added = new_idx.keys() - old_idx.keys()
            expected_retracted = old_idx.keys() - new_idx.keys()
            got_added = {
                (p.structure_key(), a) for p, a in update.added
            }
            got_retracted = {
                (p.structure_key(), a) for p, a in update.retracted
            }
            assert got_added == expected_added
            assert got_retracted == expected_retracted
            assert update.mode == "delta"
            assert sub.matches == len(new_idx)
            # The stored per-version index equals a scratch re-mine.
            stored = derived_cache().peek(
                new.version_key, ("standing_matches", sub.id)
            )
            assert stored is not None
            assert stored.keys() == new_idx.keys()
