"""Tests for maximal cliques, anti-vertex queries, multi-pattern groups."""

import pytest

from repro.apps import (
    anti_vertex_query,
    bron_kerbosch,
    lower_anti_vertices,
    maximal_cliques_contigra,
    maximal_cliques_reference,
)
from repro.graph import erdos_renyi, graph_from_edges
from repro.mining import (
    CountProcessor,
    MiningEngine,
    MultiPatternExplorer,
    group_by_structure,
    match_pattern_key,
)
from repro.patterns import Pattern, clique, path, triangle


class TestBronKerbosch:
    def test_triangle_plus_edge(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        cliques = bron_kerbosch(g)
        assert frozenset({0, 1, 2}) in cliques
        assert frozenset({2, 3}) in cliques
        assert len(cliques) == 2

    def test_complete_graph(self):
        g = graph_from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        assert bron_kerbosch(g) == {frozenset(range(5))}

    def test_covers_every_vertex(self):
        g = erdos_renyi(20, 0.3, seed=1)
        cliques = bron_kerbosch(g)
        covered = set().union(*cliques)
        assert covered == set(g.vertices())


class TestMaximalCliques:
    @pytest.mark.parametrize("seed", range(4))
    def test_contigra_matches_reference(self, seed):
        g = erdos_renyi(15, 0.45, seed=seed)
        got = maximal_cliques_contigra(g, max_size=5).all_sets()
        want = maximal_cliques_reference(g, max_size=5)
        assert got == want

    def test_cap_semantics(self):
        # K6: mined with cap 4, every 4-subset is capped-maximal.
        g = graph_from_edges(
            [(u, v) for u in range(6) for v in range(u + 1, 6)]
        )
        got = maximal_cliques_contigra(g, max_size=4).all_sets()
        assert len(got) == 15  # C(6,4)
        assert got == maximal_cliques_reference(g, max_size=4)


class TestAntiVertex:
    def test_lowering_shapes(self):
        pattern = Pattern(
            4,
            [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)],
            anti_vertices=[3],
        )
        p_m, p_plus_list = lower_anti_vertices(pattern)
        assert p_m.num_vertices == 3
        assert len(p_plus_list) == 1
        assert p_plus_list[0].num_vertices == 4
        assert not p_plus_list[0].has_anti_vertices

    def test_no_anti_vertices_rejected(self):
        with pytest.raises(ValueError):
            lower_anti_vertices(triangle())

    def test_disconnected_regular_part_rejected(self):
        pattern = Pattern(
            3, [(0, 2), (1, 2)], anti_vertices=[2]
        )
        with pytest.raises(ValueError):
            lower_anti_vertices(pattern)

    def test_query_semantics(self):
        # Path 0-1 with anti-vertex 2 adjacent to both: edges that close
        # no triangle.
        pattern = Pattern(
            3, [(0, 1), (0, 2), (1, 2)], anti_vertices=[2]
        )
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        result = anti_vertex_query(g, pattern)
        got = {frozenset(a) for a in result.assignments()}
        # edge 2-3 closes no triangle; every triangle edge does.
        assert got == {frozenset({2, 3})}


class TestMultiPattern:
    def test_group_by_structure(self):
        patterns = [
            triangle().with_labels([0, 1, 2]),
            triangle().with_labels([0, 0, 1]),
            path(2).with_labels([0, 1, 2]),
        ]
        groups = group_by_structure(patterns)
        assert len(groups) == 2

    def test_match_pattern_key_distinguishes_labels(self):
        from repro.graph import Graph

        g = Graph([(1, 2), (0, 2), (0, 1)], labels=[0, 1, 2])
        h = Graph([(1, 2), (0, 2), (0, 1)], labels=[0, 0, 1])
        assert match_pattern_key(g, [0, 1, 2]) != match_pattern_key(
            h, [0, 1, 2]
        )

    def test_explorer_attributes_matches(self):
        from conftest import labeled_random_graph

        g = labeled_random_graph(15, 0.4, num_labels=3, seed=5)
        engine = MiningEngine(g, induced=True)
        patterns = [
            triangle().with_labels([0, 1, 2]),
            triangle().with_labels([0, 0, 1]),
        ]
        explorer = MultiPatternExplorer(engine, patterns)
        processor = CountProcessor()
        results = explorer.explore(processor)
        attributed = sum(count for _, count in results)
        # attribution must match direct per-pattern counts
        direct = sum(
            MiningEngine(g, induced=True).count(p) for p in patterns
        )
        assert attributed == direct

    def test_requires_induced_engine(self):
        g = erdos_renyi(8, 0.4, seed=0)
        with pytest.raises(ValueError):
            MultiPatternExplorer(MiningEngine(g), [triangle()])

    def test_group_members_must_share_structure(self):
        from repro.mining.multipattern import MergedPatternGroup

        with pytest.raises(ValueError):
            MergedPatternGroup(triangle(), [triangle(), path(2)])
