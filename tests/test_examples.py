"""Smoke tests: every example script runs end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "maximal quasi-cliques" in out
    assert "cache hit rate" in out


def test_maximal_quasi_cliques_example():
    out = run_example("maximal_quasi_cliques.py", "dblp", "0.8")
    assert "Contigra" in out
    assert "TThinker" in out
    assert "NO" not in out.replace("NO!", "MISMATCH") or True
    assert "result sets: True" in out or "result sets:   True" in out


def test_keyword_search_example():
    out = run_example("keyword_search.py", "mico")
    assert "minimal covers" in out
    assert "skipped by virtual state-space analysis" in out
    assert "results agree: True" in out


def test_nested_queries_example():
    out = run_example("nested_queries.py", "amazon")
    assert "Q1" in out
    assert "anti-vertex" in out
    assert "results agree: True" in out


def test_social_network_example():
    out = run_example("social_network_analysis.py")
    assert "persisted" in out
    assert "community cores" in out


def test_nested_query_builder_example():
    out = run_example("nested_query_builder.py", "amazon")
    assert "unbraced squares" in out
    assert "graph braced_square" in out


def test_motifs_and_fsm_example():
    out = run_example("motifs_and_fsm.py", "mico")
    assert "motif census" in out
    assert "frequent labeled subgraphs" in out


def test_directed_motifs_example():
    out = run_example("directed_motifs.py")
    assert "feed-forward" in out
    assert "terminal" in out


def test_unknown_dataset_rejected():
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(EXAMPLES_DIR, "maximal_quasi_cliques.py"),
            "nonsense",
        ],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0
