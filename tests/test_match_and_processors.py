"""Tests for Match objects and match processors."""

import pytest

from repro.graph import erdos_renyi
from repro.mining import (
    CallbackProcessor,
    CollectProcessor,
    CountProcessor,
    FilterMapReduceProcessor,
    FirstMatchProcessor,
    Match,
    MiningEngine,
)
from repro.patterns import path, triangle


class TestMatch:
    def test_accessors(self):
        m = Match(triangle(), [5, 7, 9])
        assert m.vertex_for(1) == 7
        assert m.vertex_set == frozenset({5, 7, 9})
        assert m.key() == m.vertex_set

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Match(triangle(), [1, 2])

    def test_non_injective_rejected(self):
        with pytest.raises(ValueError):
            Match(triangle(), [1, 2, 1])

    def test_equality_and_hash(self):
        a = Match(triangle(), [1, 2, 3])
        b = Match(triangle(), [1, 2, 3])
        c = Match(triangle(), [3, 2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_repr_uses_pattern_name(self):
        assert "triangle" in repr(Match(triangle(), [0, 1, 2]))


class TestProcessors:
    def _matches(self):
        g = erdos_renyi(12, 0.5, seed=0)
        return MiningEngine(g).find_all(triangle())

    def test_count(self):
        p = CountProcessor()
        for m in self._matches():
            p.process(m)
        assert p.result() == len(self._matches())

    def test_collect_unbounded(self):
        p = CollectProcessor()
        matches = self._matches()
        for m in matches:
            assert not p.process(m)
        assert p.result() == matches

    def test_collect_limit(self):
        p = CollectProcessor(limit=2)
        matches = self._matches()
        assert not p.process(matches[0])
        assert p.process(matches[1])  # stop signal at the limit

    def test_first_match(self):
        p = FirstMatchProcessor()
        matches = self._matches()
        assert p.process(matches[0])
        assert p.result() == matches[0]

    def test_callback_stop_propagation(self):
        calls = []

        def cb(match):
            calls.append(match)
            return len(calls) == 2

        p = CallbackProcessor(cb)
        matches = self._matches()
        assert not p.process(matches[0])
        assert p.process(matches[1])
        assert p.calls == 2

    def test_filter_map_reduce(self):
        p = FilterMapReduceProcessor(
            map_fn=lambda m: min(m.vertex_set),
            reduce_fn=lambda acc, x: acc + x,
            initial=0,
            filter_fn=lambda m: 0 in m.vertex_set,
        )
        for m in self._matches():
            p.process(m)
        expected = sum(
            0 for m in self._matches() if 0 in m.vertex_set
        )
        assert p.result() == expected

    def test_filter_map_reduce_no_filter(self):
        p = FilterMapReduceProcessor(
            map_fn=lambda m: 1,
            reduce_fn=lambda acc, x: acc + x,
            initial=0,
        )
        for m in self._matches():
            p.process(m)
        assert p.result() == len(self._matches())

    def test_base_processor_abstract(self):
        from repro.mining.processors import Processor

        with pytest.raises(NotImplementedError):
            Processor().process(Match(path(1), [0, 1]))
        with pytest.raises(NotImplementedError):
            Processor().result()
