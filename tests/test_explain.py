"""Tests for workload explanation."""

from repro.core import (
    explain_workload,
    maximality_constraints,
    nested_query_constraints,
)
from repro.graph import erdos_renyi
from repro.patterns import house, quasi_clique_patterns_up_to, triangle


class TestExplain:
    def _mqc_text(self, gamma=0.8):
        g = erdos_renyi(20, 0.3, seed=1)
        cs = maximality_constraints(
            quasi_clique_patterns_up_to(5, gamma), induced=True
        )
        return explain_workload(g, cs)

    def test_mentions_every_pattern(self):
        text = self._mqc_text()
        for name in ("qc-3.0", "qc-4.0", "qc-5.0"):
            assert name in text

    def test_dependency_summary(self):
        text = self._mqc_text()
        assert "3 successor" in text
        assert "1 lateral" in text

    def test_terminal_pattern_has_no_constraints(self):
        assert "no successor constraints" in self._mqc_text()

    def test_vtask_schedule_listed(self):
        text = self._mqc_text()
        assert "VTask schedule" in text
        assert "gap 1" in text and "gap 2" in text

    def test_fig9_decision_shown(self):
        text = self._mqc_text()
        assert "-intermediates-first" in text

    def test_nsq_workload(self):
        g = erdos_renyi(15, 0.2, seed=2)
        cs = nested_query_constraints(triangle(), [house()])
        text = explain_workload(g, cs)
        assert "edge-induced matching" in text
        assert "triangle" in text
        assert "house" in text

    def test_matching_orders_are_permutations(self):
        text = self._mqc_text(gamma=0.6)
        assert "matching order" in text
