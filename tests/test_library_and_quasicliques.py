"""Tests for the pattern library, quasi-clique patterns, and structures."""

import pytest

from repro.graph import graph_from_edges
from repro.patterns import (
    clique,
    cycle,
    diamond,
    diamond_house,
    edge,
    house,
    is_quasi_clique,
    path,
    quasi_clique_min_degree,
    quasi_clique_patterns,
    quasi_clique_patterns_up_to,
    count_quasi_clique_patterns,
    star,
    tailed_triangle,
    triangle,
    wheel,
)
from repro.patterns.structures import connected_structures


class TestLibrary:
    def test_edge(self):
        assert edge().num_edges == 1

    def test_path_sizes(self):
        assert path(3).num_vertices == 4
        assert path(3).num_edges == 3

    def test_cycle(self):
        c = cycle(5)
        assert c.num_edges == 5
        assert all(c.degree(v) == 2 for v in c.vertices())

    def test_clique(self):
        assert clique(5).num_edges == 10

    def test_star(self):
        s = star(4)
        assert s.degree(0) == 4
        assert all(s.degree(v) == 1 for v in range(1, 5))

    def test_house_is_triangle_plus_square(self):
        h = house()
        assert h.num_vertices == 5
        assert h.num_edges == 6

    def test_diamond_house_contains_diamond(self):
        from repro.patterns import contains

        assert contains(diamond(), diamond_house())

    def test_tailed_triangle_contains_triangle(self):
        from repro.patterns import contains

        assert contains(triangle(), tailed_triangle())

    def test_wheel(self):
        w = wheel(4)
        assert w.degree(0) == 4
        assert w.num_edges == 8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            path(0)
        with pytest.raises(ValueError):
            cycle(2)
        with pytest.raises(ValueError):
            wheel(2)
        with pytest.raises(ValueError):
            star(0)


class TestQuasiCliqueDegree:
    def test_threshold_values(self):
        assert quasi_clique_min_degree(4, 0.8) == 3
        assert quasi_clique_min_degree(5, 0.8) == 4
        assert quasi_clique_min_degree(6, 0.8) == 4
        assert quasi_clique_min_degree(6, 0.6) == 3

    def test_gamma_one_is_clique(self):
        assert quasi_clique_min_degree(5, 1.0) == 4

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            quasi_clique_min_degree(4, 0.0)
        with pytest.raises(ValueError):
            quasi_clique_min_degree(4, 1.5)

    def test_is_quasi_clique_on_data(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert is_quasi_clique(g, [0, 1, 2], 0.8)
        assert not is_quasi_clique(g, [0, 1, 2, 3], 0.8)

    def test_is_quasi_clique_requires_connectivity(self):
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        # two disjoint triangles: min degree 2 but disconnected
        assert not is_quasi_clique(g, [0, 1, 2, 3, 4, 5], 0.4)


class TestQuasiCliquePatterns:
    def test_paper_pattern_counts(self):
        """The paper's §8.2: 7-26 patterns for gamma in [0.6, 0.8]."""
        assert count_quasi_clique_patterns(6, 0.8) == 7
        assert count_quasi_clique_patterns(6, 0.7) == 9
        assert count_quasi_clique_patterns(6, 0.6) == 26

    def test_gamma08_small_sizes_are_cliques(self):
        assert quasi_clique_patterns(4, 0.8) == (
            quasi_clique_patterns(4, 1.0)
        )
        (only,) = quasi_clique_patterns(5, 0.8)
        assert only.is_clique()

    def test_size6_gamma08(self):
        patterns = quasi_clique_patterns(6, 0.8)
        # K6 minus matchings of size 0..3 -> 4 patterns? K6 itself plus
        # complements of 1, 2, 3 disjoint edges.
        assert len(patterns) == 4
        assert patterns[0].is_clique()

    def test_all_meet_min_degree(self):
        for gamma in (0.6, 0.7, 0.8):
            for size, patterns in quasi_clique_patterns_up_to(
                6, gamma
            ).items():
                threshold = quasi_clique_min_degree(size, gamma)
                for p in patterns:
                    assert p.min_degree() >= threshold
                    assert p.is_connected()

    def test_no_isomorphic_duplicates(self):
        patterns = quasi_clique_patterns(6, 0.6)
        keys = {p.canonical_key() for p in patterns}
        assert len(keys) == len(patterns)

    def test_sorted_densest_first(self):
        patterns = quasi_clique_patterns(6, 0.6)
        counts = [p.num_edges for p in patterns]
        assert counts == sorted(counts, reverse=True)

    def test_min_size_bound(self):
        with pytest.raises(ValueError):
            quasi_clique_patterns_up_to(3, 0.8, min_size=4)


class TestConnectedStructures:
    def test_known_counts(self):
        # OEIS A001349: connected graphs on n nodes.
        assert len(connected_structures(1)) == 1
        assert len(connected_structures(2)) == 1
        assert len(connected_structures(3)) == 2
        assert len(connected_structures(4)) == 6
        assert len(connected_structures(5)) == 21

    def test_all_connected_and_distinct(self):
        structures = connected_structures(5)
        assert all(p.is_connected() for p in structures)
        keys = {p.canonical_key() for p in structures}
        assert len(keys) == len(structures)

    def test_sparsest_first(self):
        structures = connected_structures(4)
        assert structures[0].num_edges == 3  # trees first
        assert structures[-1].is_clique()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            connected_structures(0)
