"""Tests for GraphBuilder and plain-text graph I/O."""

import pytest

from repro.graph import (
    GraphBuilder,
    graph_from_edges,
    read_edge_list,
    write_edge_list,
    write_labels,
)


class TestBuilder:
    def test_dedup_and_self_loops(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edge(1, 0)
        b.add_edge(0, 0)
        g = b.build()
        assert g.num_edges == 1

    def test_arbitrary_ids_interned_in_order(self):
        b = GraphBuilder()
        b.add_edge("x", "y")
        b.add_edge("y", "z")
        assert b.vertex_id("x") == 0
        assert b.vertex_id("y") == 1
        assert b.vertex_id("z") == 2

    def test_isolated_vertex(self):
        b = GraphBuilder()
        b.add_vertex("lonely")
        b.add_edge("a", "b")
        g = b.build()
        assert g.num_vertices == 3
        assert g.degree(0) == 0

    def test_labels_default_fill(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.set_label(0, 7)
        g = b.build()
        assert g.label(0) == 7
        assert g.label(1) == -1  # unlabeled vertices get the filler label

    def test_unlabeled_when_no_labels_set(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        assert not b.build().is_labeled

    def test_counts_during_building(self):
        b = GraphBuilder()
        b.add_edges([(0, 1), (1, 2)])
        assert b.num_vertices == 3
        assert b.num_edges == 2

    def test_graph_from_edges_with_labels(self):
        g = graph_from_edges([("a", "b")], labels={"a": 3, "b": 4})
        assert g.label(0) == 3
        assert g.label(1) == 4


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        loaded = read_edge_list(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 3

    def test_roundtrip_with_labels(self, tmp_path):
        g = graph_from_edges([(0, 1)], labels={0: 9, 1: 8})
        epath = str(tmp_path / "g.txt")
        lpath = str(tmp_path / "g.labels")
        write_edge_list(g, epath)
        write_labels(g, lpath)
        loaded = read_edge_list(epath, label_path=lpath)
        assert loaded.is_labeled
        assert sorted(
            loaded.label(v) for v in loaded.vertices()
        ) == [8, 9]

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# header\n\n0 1\n1 2\n")
        g = read_edge_list(str(path))
        assert g.num_edges == 2

    def test_malformed_line_reports_position(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\njunk\n")
        with pytest.raises(ValueError, match="bad.txt:2"):
            read_edge_list(str(path))

    def test_write_labels_on_unlabeled_rejected(self, tmp_path):
        g = graph_from_edges([(0, 1)])
        with pytest.raises(ValueError):
            write_labels(g, str(tmp_path / "l.txt"))

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_edge_list(str(tmp_path / "nope.txt"))
