"""Tests for the result self-verification module."""

import pytest

from repro.apps import keyword_search, maximal_quasi_cliques, mine_quasi_cliques
from repro.apps.verify import (
    verify_maximal_quasi_cliques,
    verify_minimal_covers,
    verify_quasi_clique_universe,
)
from repro.graph import erdos_renyi

from conftest import labeled_random_graph


class TestMQCVerification:
    def test_clean_result_passes(self):
        g = erdos_renyi(16, 0.45, seed=1)
        result = maximal_quasi_cliques(g, 0.7, 5)
        assert verify_maximal_quasi_cliques(
            g, result.all_sets(), 0.7, 5
        ) == []

    def test_detects_non_quasi_clique(self):
        g = erdos_renyi(16, 0.45, seed=1)
        result = maximal_quasi_cliques(g, 0.7, 5)
        # inject a sparse garbage set
        garbage = frozenset({0, 1, 2})
        while g.edges_within(sorted(garbage)) == 3:
            garbage = frozenset(
                {max(garbage) + 1, max(garbage) + 2, max(garbage) + 3}
            )
        sets = set(result.all_sets()) | {garbage}
        violations = verify_maximal_quasi_cliques(g, sets, 0.7, 5)
        assert violations

    def test_detects_nesting(self):
        g = erdos_renyi(16, 0.5, seed=2)
        result = maximal_quasi_cliques(g, 0.7, 5)
        big = max(result.all_sets(), key=len)
        nested = frozenset(sorted(big)[:-1])
        sets = set(result.all_sets()) | {nested}
        violations = verify_maximal_quasi_cliques(g, sets, 0.7, 5)
        assert any("contained" in v or "extendable" in v or "not a" in v
                   for v in violations)

    def test_detects_non_maximal(self):
        g = erdos_renyi(16, 0.5, seed=3)
        universe = mine_quasi_cliques(g, 0.7, 5)
        maximal = maximal_quasi_cliques(g, 0.7, 5).all_sets()
        non_maximal = next(
            iter(universe.all_sets() - maximal), None
        )
        if non_maximal is None:
            pytest.skip("no non-maximal quasi-clique in this graph")
        violations = verify_maximal_quasi_cliques(
            g, {non_maximal}, 0.7, 5
        )
        assert violations

    def test_size_range_enforced(self):
        g = erdos_renyi(10, 0.9, seed=4)
        violations = verify_maximal_quasi_cliques(
            g, {frozenset({0, 1})}, 0.7, 5, min_size=3
        )
        assert any("out of range" in v for v in violations)


class TestKWSVerification:
    def test_clean_result_passes(self):
        g = labeled_random_graph(15, 0.3, num_labels=4, seed=5)
        result = keyword_search(
            g, [0, 1], 4, collect_workload_stats=False
        )
        assert verify_minimal_covers(g, result.minimal, [0, 1], 4) == []

    def test_detects_non_cover(self):
        g = labeled_random_graph(15, 0.3, num_labels=4, seed=5)
        bogus = frozenset({v for v in range(3) if g.is_connected_subset(range(3))} or {0})
        violations = verify_minimal_covers(g, {frozenset({0})}, [0, 1], 4)
        # a single vertex can't cover two keywords
        assert violations

    def test_detects_oversized(self):
        g = labeled_random_graph(15, 0.5, num_labels=2, seed=6)
        big = frozenset(range(6))
        violations = verify_minimal_covers(g, {big}, [0], 4)
        assert any("size cap" in v for v in violations)


class TestUniverseVerification:
    def test_clean_result_passes(self):
        g = erdos_renyi(14, 0.5, seed=7)
        result = mine_quasi_cliques(g, 0.7, 5)
        assert verify_quasi_clique_universe(
            g, result.all_sets(), 0.7, 5
        ) == []

    def test_detects_low_degree(self):
        g = erdos_renyi(14, 0.3, seed=8)
        sparse_set = None
        import itertools

        for combo in itertools.combinations(range(14), 4):
            degrees = g.degrees_within(list(combo))
            if g.is_connected_subset(combo) and min(degrees.values()) == 1:
                sparse_set = frozenset(combo)
                break
        if sparse_set is None:
            pytest.skip("no suitably sparse connected set")
        violations = verify_quasi_clique_universe(g, {sparse_set}, 0.8, 5)
        assert any("min degree" in v for v in violations)
