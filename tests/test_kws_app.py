"""Tests for the keyword-search application (paper §7 / §8.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kws import (
    classify_workload,
    frequent_and_rare_keywords,
    keyword_patterns,
    keyword_search,
)
from repro.baselines import posthoc_kws
from repro.baselines.naive import minimal_keyword_covers
from repro.core import statespace
from repro.errors import TimeLimitExceeded
from repro.graph import attach_labels, erdos_renyi

from conftest import labeled_random_graph

KW = [0, 1, 2]


class TestPatternWorkload:
    def test_pattern_count_scale(self):
        """3 keywords, size <= 5: a few hundred patterns (paper: 287)."""
        patterns = keyword_patterns(KW, 5)
        assert 200 <= len(patterns) <= 600

    def test_small_workload_exact(self):
        # size <= 3 with 3 keywords: path (3 distinct middle choices)
        # and triangle (1) -> 4 patterns.
        assert len(keyword_patterns(KW, 3)) == 4

    def test_all_cover_keywords(self):
        for p in keyword_patterns(KW, 4):
            definite = {lab for lab in p.labels if lab is not None}
            assert definite == set(KW)

    def test_canonical_dedup(self):
        patterns = keyword_patterns(KW, 4)
        keys = {p.canonical_key() for p in patterns}
        assert len(keys) == len(patterns)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            keyword_patterns([], 4)
        with pytest.raises(ValueError):
            keyword_patterns(KW, 2)

    def test_classification_mostly_skip(self):
        """The §7 claim: ~95% of patterns are skipped outright."""
        buckets = classify_workload(KW, 5)
        ratio = statespace.skip_ratio(buckets)
        assert ratio > 0.85


class TestSearchCorrectness:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_oracle(self, seed):
        g = attach_labels(
            erdos_renyi(18, 0.2, seed=seed), num_labels=6, seed=seed
        )
        got = keyword_search(
            g, KW, 5, collect_workload_stats=False
        ).minimal
        assert got == minimal_keyword_covers(g, KW, 5)

    @pytest.mark.parametrize(
        "toggles",
        [
            {"enable_promotion": False},
            {"enable_eager_filter": False},
            {"enable_elimination": False},
            {"rl_strategy": "dense-first"},
            {"rl_strategy": "sparse-first"},
            {
                "enable_promotion": False,
                "enable_eager_filter": False,
                "enable_elimination": False,
            },
        ],
    )
    def test_toggles_never_change_results(self, toggles):
        g = labeled_random_graph(16, 0.25, num_labels=5, seed=21)
        want = minimal_keyword_covers(g, KW, 5)
        got = keyword_search(
            g, KW, 5, collect_workload_stats=False, **toggles
        ).minimal
        assert got == want

    def test_baseline_agrees(self):
        g = labeled_random_graph(16, 0.25, num_labels=5, seed=2)
        ours = keyword_search(g, KW, 5, collect_workload_stats=False)
        baseline = posthoc_kws(g, KW, 5)
        assert ours.minimal == baseline.valid

    @given(st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_property_agreement(self, seed):
        g = labeled_random_graph(12, 0.3, num_labels=4, seed=seed)
        got = keyword_search(
            g, [0, 1], 4, collect_workload_stats=False
        ).minimal
        assert got == minimal_keyword_covers(g, [0, 1], 4)

    def test_unlabeled_graph_rejected(self):
        with pytest.raises(ValueError):
            keyword_search(erdos_renyi(8, 0.4, seed=0), KW, 4)

    def test_time_limit(self):
        g = labeled_random_graph(80, 0.3, num_labels=8, seed=3)
        with pytest.raises(TimeLimitExceeded):
            keyword_search(
                g, KW, 5, time_limit=0.001, collect_workload_stats=False
            )


class TestSearchWork:
    def test_eager_filter_reduces_checks(self):
        g = labeled_random_graph(18, 0.3, num_labels=4, seed=5)
        eager = keyword_search(g, KW, 5, collect_workload_stats=False)
        lazy = keyword_search(
            g, KW, 5, enable_eager_filter=False,
            collect_workload_stats=False,
        )
        assert eager.stats.rl_paths <= lazy.stats.rl_paths

    def test_promotion_reduces_exploration(self):
        g = labeled_random_graph(18, 0.3, num_labels=4, seed=6)
        promoted = keyword_search(g, KW, 5, collect_workload_stats=False)
        scratch = keyword_search(
            g, KW, 5, enable_promotion=False,
            collect_workload_stats=False,
        )
        assert promoted.stats.rl_paths < scratch.stats.rl_paths

    def test_elimination_avoids_data_checks(self):
        g = labeled_random_graph(18, 0.3, num_labels=4, seed=7)
        with_elim = keyword_search(g, KW, 5, collect_workload_stats=False)
        without = keyword_search(
            g, KW, 5, enable_elimination=False,
            collect_workload_stats=False,
        )
        assert with_elim.stats.matches_checked <= without.stats.matches_checked

    def test_workload_stats_collected(self):
        g = labeled_random_graph(14, 0.3, num_labels=4, seed=8)
        result = keyword_search(g, KW, 5)
        assert result.patterns_total > 0
        assert 0 < result.pattern_skip_ratio <= 1


class TestFastClassifier:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_matches_statespace_classification(self, seed):
        """The bitmask fast path must equal the reference classifier."""
        import itertools

        from repro.apps.kws import _MatchClassifier
        from repro.patterns import Pattern

        g = labeled_random_graph(9, 0.35, num_labels=5, seed=seed)
        keywords = frozenset({0, 1, 2})
        classifier = _MatchClassifier(keywords)
        for size in (3, 4, 5):
            for combo in itertools.combinations(range(9), size):
                if not g.is_connected_subset(combo):
                    continue
                ordered = sorted(combo)
                position = {v: i for i, v in enumerate(ordered)}
                edges = [
                    (position[u], position[w])
                    for u in ordered
                    for w in g.neighbors(u)
                    if w in position and u < w
                ]
                labels = [
                    g.label(v) if g.label(v) in keywords else None
                    for v in ordered
                ]
                fast = classifier.classify(g, combo)
                reference = statespace.classify_minimality(
                    Pattern(size, edges, labels=labels), keywords
                )
                assert fast == reference


class TestKeywordSelection:
    def test_frequent_and_rare(self):
        g = labeled_random_graph(60, 0.1, num_labels=8, seed=9)
        mf, lf = frequent_and_rare_keywords(g, count=3)
        freq = g.label_frequencies()
        assert len(mf) == 3 and len(lf) == 3
        assert min(freq[k] for k in mf) >= max(freq[k] for k in lf)

    def test_too_few_labels_rejected(self):
        g = labeled_random_graph(10, 0.3, num_labels=2, seed=0)
        with pytest.raises(ValueError):
            frequent_and_rare_keywords(g, count=3)
