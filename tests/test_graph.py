"""Unit tests for the core Graph type."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Graph, GraphBuilder

from conftest import graph_strategy


def build(edges, n=None, labels=None):
    builder = GraphBuilder()
    if n is not None:
        for v in range(n):
            builder.add_vertex(v)
    builder.add_edges(edges)
    g = builder.build()
    if labels is not None:
        return Graph([g.neighbors(v) for v in g.vertices()], labels=labels)
    return g


class TestBasics:
    def test_counts(self):
        g = build([(0, 1), (1, 2)], n=4)
        assert g.num_vertices == 4
        assert g.num_edges == 2
        assert len(g) == 4

    def test_neighbors_sorted(self):
        g = build([(0, 3), (0, 1), (0, 2)])
        assert g.neighbors(0) == (1, 2, 3)

    def test_degree(self):
        g = build([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_has_edge_both_directions(self):
        g = build([(0, 1)], n=3)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_has_edge_self_loop_false(self):
        g = build([(0, 1)])
        assert not g.has_edge(0, 0)

    def test_edges_each_once(self):
        g = build([(0, 1), (1, 2), (0, 2)])
        assert sorted(g.edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_neighbor_set_matches_neighbors(self):
        g = build([(0, 1), (0, 2), (1, 2), (2, 3)])
        for v in g.vertices():
            assert g.neighbor_set(v) == frozenset(g.neighbors(v))

    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ValueError):
            Graph([(1,), ()])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph([(1,), (0,)], labels=[1])

    def test_empty_graph(self):
        g = Graph([])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0
        assert g.density == 0.0


class TestLabels:
    def test_unlabeled(self):
        g = build([(0, 1)])
        assert not g.is_labeled
        assert g.label(0) is None
        assert g.num_labels == 0
        assert g.vertices_with_label(1) == ()

    def test_labeled(self):
        g = build([(0, 1), (1, 2)], labels=[5, 7, 5])
        assert g.is_labeled
        assert g.label(1) == 7
        assert g.num_labels == 2
        assert g.vertices_with_label(5) == (0, 2)

    def test_label_frequencies(self):
        g = build([(0, 1), (1, 2)], labels=[5, 7, 5])
        assert g.label_frequencies() == {5: 2, 7: 1}


class TestDerived:
    def test_density_complete(self):
        g = build([(0, 1), (1, 2), (0, 2)])
        assert g.density == pytest.approx(1.0)

    def test_max_degree(self):
        g = build([(0, 1), (0, 2), (0, 3)])
        assert g.max_degree == 3

    def test_induced_subgraph(self):
        g = build([(0, 1), (1, 2), (0, 2), (2, 3)])
        sub = g.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_induced_subgraph_keeps_labels(self):
        g = build([(0, 1), (1, 2)], labels=[4, 5, 6])
        sub = g.induced_subgraph([1, 2])
        assert sub.labels == (5, 6)

    def test_edges_within(self):
        g = build([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert g.edges_within([0, 1, 2]) == 3
        assert g.edges_within([0, 3]) == 0

    def test_degrees_within(self):
        g = build([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert g.degrees_within([0, 1, 2]) == {0: 2, 1: 2, 2: 2}

    def test_is_connected_subset(self):
        g = build([(0, 1), (2, 3)])
        assert g.is_connected_subset([0, 1])
        assert not g.is_connected_subset([0, 2])
        assert g.is_connected_subset([])

    def test_equality_and_hash(self):
        a = build([(0, 1)])
        b = build([(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != build([(0, 1), (1, 2)])


class TestProperties:
    @given(graph_strategy(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, g):
        assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges

    @given(graph_strategy(max_vertices=10))
    @settings(max_examples=60, deadline=None)
    def test_edges_consistent_with_has_edge(self, g):
        for u, v in g.edges():
            assert g.has_edge(u, v)
        count = sum(
            1
            for u in g.vertices()
            for v in g.vertices()
            if u < v and g.has_edge(u, v)
        )
        assert count == g.num_edges

    @given(graph_strategy(max_vertices=8), st.integers(0, 7))
    @settings(max_examples=60, deadline=None)
    def test_induced_subgraph_degrees_bounded(self, g, k):
        subset = [v for v in g.vertices() if v <= k]
        sub = g.induced_subgraph(subset)
        assert sub.num_vertices == len(subset)
        for i in range(sub.num_vertices):
            assert sub.degree(i) <= g.degree(sorted(subset)[i])
