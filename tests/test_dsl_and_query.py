"""Tests for the pattern DSL and the fluent Query builder."""

import pytest
from hypothesis import given, settings

from repro.core import Query
from repro.core.query import Query as QueryDirect
from repro.errors import TimeLimitExceeded
from repro.graph import erdos_renyi
from repro.patterns import (
    Pattern,
    are_isomorphic,
    house,
    parse_pattern,
    to_dot,
    to_dsl,
    triangle,
)

from conftest import connected_pattern_strategy


class TestParse:
    def test_triangle(self):
        assert parse_pattern("0-1, 1-2, 0-2") == triangle()

    def test_chain_sugar(self):
        assert parse_pattern("0-1-2-0") == triangle()

    def test_labels(self):
        p = parse_pattern("0-1; labels 0:5 1:7")
        assert p.label(0) == 5
        assert p.label(1) == 7

    def test_wildcards_stay_wildcard(self):
        p = parse_pattern("0-1-2; labels 1:4")
        assert p.label(0) is None
        assert p.label(1) == 4

    def test_anti_vertices(self):
        p = parse_pattern("0-1, 1-2, 0-2, 0-3, 1-3; anti 3")
        assert p.anti_vertices == frozenset({3})

    def test_explicit_vertex_count(self):
        p = parse_pattern("0; vertices 1")
        assert p.num_vertices == 1
        assert p.num_edges == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            parse_pattern("")
        with pytest.raises(ValueError):
            parse_pattern("0-0")
        with pytest.raises(ValueError):
            parse_pattern("0-x")
        with pytest.raises(ValueError):
            parse_pattern("0-1; bogus 3")
        with pytest.raises(ValueError):
            parse_pattern("0-5; vertices 2")

    def test_roundtrip_library(self):
        for p in (triangle(), house()):
            assert parse_pattern(to_dsl(p)) == p.unlabeled()

    def test_roundtrip_labeled_and_anti(self):
        p = Pattern(
            4,
            [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)],
            labels=[5, None, 6, None],
            anti_vertices=[3],
        )
        assert parse_pattern(to_dsl(p)) == p

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, p):
        assert are_isomorphic(parse_pattern(to_dsl(p)), p)

    def test_roundtrip_through_dot(self):
        # DOT export mentions every structural element the DSL does;
        # reparsing the DSL of a pattern reconstructed from its own
        # text must land on the identical structure.
        for text in (
            "0-1, 1-2, 0-2",
            "0-1, 1-2, 0-2; labels 0:5 2:7",
            "0-1; anti-edges 0-2; vertices 3",
        ):
            p = parse_pattern(text)
            again = parse_pattern(to_dsl(p))
            assert again == p
            assert to_dot(again) == to_dot(p)


class TestParseErrorMessages:
    """Every parse error names the clause index and quotes the text."""

    @pytest.mark.parametrize(
        "text, clause, fragment",
        [
            ("0-0", 0, "0-0"),
            ("0-x", 0, "0-x"),
            ("0-1; labels 0:x", 1, "0:x"),
            ("0-1; anti-edges 02", 1, "02"),
            ("0-1; vertices x", 1, "vertices x"),
            ("0-1; bogus 3", 1, "bogus 3"),
            ("0-1, 1-2; vertices 1", 1, "vertices 1"),
            ("0-1; labels 0:1; anti q", 2, "anti q"),
        ],
    )
    def test_error_carries_clause_and_fragment(
        self, text, clause, fragment
    ):
        with pytest.raises(ValueError) as excinfo:
            parse_pattern(text)
        message = str(excinfo.value)
        assert message.startswith(f"clause {clause} (")
        assert repr(fragment) in message


class TestDot:
    def test_contains_edges_and_style(self):
        p = Pattern(
            3, [(0, 1), (1, 2), (0, 2)], labels=[7, None, None],
            anti_vertices=[2],
        )
        dot = to_dot(p)
        assert "0 -- 1" in dot
        assert 'label="0:7"' in dot
        assert "dashed" in dot
        assert dot.startswith("graph pattern {")


class TestQuery:
    def test_matches_nsq_app(self):
        from repro.apps.nsq import nested_subgraph_query, paper_query_triangles

        g = erdos_renyi(15, 0.2, seed=3)
        p_m, p_plus = paper_query_triangles()
        builder = Query(p_m)
        for containing in p_plus:
            builder.not_within(containing)
        via_query = set(builder.run(g).assignments())
        via_app = set(
            nested_subgraph_query(g, p_m, p_plus).assignments()
        )
        assert via_query == via_app

    def test_count(self):
        g = erdos_renyi(15, 0.25, seed=4)
        n = Query(triangle()).not_within(house()).count(g)
        assert n >= 0

    def test_validation_at_build_time(self):
        with pytest.raises(ValueError):
            Query(triangle()).not_within(triangle())
        with pytest.raises(ValueError):
            Query(Pattern(3, [(0, 1)]))  # disconnected
        with pytest.raises(ValueError):
            Query(triangle()).time_limit(0)
        with pytest.raises(ValueError):
            Query(
                Pattern(4, [(0, 1), (1, 2), (0, 2), (0, 3)],
                        anti_vertices=[3])
            )

    def test_time_limit_enforced(self):
        g = erdos_renyi(80, 0.3, seed=5)
        q = Query(triangle()).not_within(house()).time_limit(0.01)
        with pytest.raises(TimeLimitExceeded):
            q.run(g)

    def test_ablation_toggles_keep_results(self):
        g = erdos_renyi(15, 0.22, seed=6)
        base = set(
            Query(triangle()).not_within(house()).run(g).assignments()
        )
        ablated = set(
            Query(triangle())
            .not_within(house())
            .without_fusion()
            .without_lateral_cancellation()
            .rl_strategy("dense-first")
            .run(g)
            .assignments()
        )
        assert base == ablated

    def test_exported_from_core(self):
        assert Query is QueryDirect

    def test_repr(self):
        text = repr(Query(triangle()).not_within(house()))
        assert "triangle" in text and "house" in text
