"""Tests for the execution core: tokens, budgets, bus, task contexts.

Covers the ``repro.exec`` primitives directly plus the two lifecycle
guarantees the refactor was for: budget exceptions survive pickling
with their original types (the process-scheduler contract), and a
parent token cancellation stops pending child VTasks.
"""

import pickle

import pytest

from repro.core import LateralScheduler, ValidationTarget
from repro.errors import (
    MemoryBudgetExceeded,
    StorageBudgetExceeded,
    TimeLimitExceeded,
)
from repro.exec import (
    CANCEL,
    MATCH_CHECKED,
    PROMOTE,
    Budget,
    CancellationToken,
    EventBus,
    EventLog,
    StatsSubscriber,
    TaskContext,
)
from repro.graph import erdos_renyi, graph_from_edges
from repro.mining import ConstraintStats, SetOperationCache
from repro.patterns import clique, quasi_clique_patterns, triangle


class TestCancellationToken:
    def test_parent_cancel_propagates_to_descendants(self):
        parent = CancellationToken()
        child = parent.child()
        grandchild = child.child()
        parent.cancel("deadline")
        assert child.cancelled
        assert grandchild.cancelled
        assert parent.reason == "deadline"

    def test_child_cancel_does_not_touch_parent_or_siblings(self):
        parent = CancellationToken()
        left = parent.child()
        right = parent.child()
        left.cancel()
        assert left.cancelled
        assert not parent.cancelled
        assert not right.cancelled

    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        token = CancellationToken()
        token.cancel("first")
        token.cancel("second")
        assert token.reason == "first"


class TestBudget:
    def test_no_limit_never_raises(self):
        budget = Budget(check_interval=1)
        for _ in range(1000):
            budget.check_deadline()

    def test_expired_deadline_raises_tle(self):
        budget = Budget(time_limit=1e-9, check_interval=1)
        with pytest.raises(TimeLimitExceeded) as info:
            budget.check_deadline()
        assert info.value.limit_seconds == 1e-9
        assert info.value.elapsed > 0

    def test_tick_gating_skips_intermediate_checks(self):
        budget = Budget(time_limit=1e-9, check_interval=4)
        for _ in range(3):
            budget.check_deadline()  # ticks 1-3: no clock read
        with pytest.raises(TimeLimitExceeded):
            budget.check_deadline()  # tick 4 reads the clock

    def test_restart_reanchors_the_clock(self):
        budget = Budget(time_limit=30.0, check_interval=1)
        budget.start -= 60.0  # pretend a minute passed
        with pytest.raises(TimeLimitExceeded):
            budget.check_deadline()
        budget.restart()
        budget.check_deadline()

    def test_memory_charge_release_and_peak(self):
        budget = Budget(memory_budget_bytes=100)
        budget.charge_memory(60)
        budget.charge_memory(30)
        budget.release_memory(50)
        assert budget.memory_used_bytes == 40
        assert budget.peak_memory_bytes == 90
        with pytest.raises(MemoryBudgetExceeded):
            budget.charge_memory(61)

    def test_storage_is_cumulative(self):
        budget = Budget(storage_budget_bytes=100)
        budget.charge_storage(60)
        with pytest.raises(StorageBudgetExceeded) as info:
            budget.charge_storage(41)
        assert info.value.budget_bytes == 100
        assert info.value.used_bytes == 101

    def test_invalid_check_interval(self):
        with pytest.raises(ValueError):
            Budget(check_interval=0)


class TestBudgetExceptionPickling:
    """Budget exceptions must cross process boundaries intact.

    Default unpickling replays ``Exception.__init__`` with the
    formatted message, which breaks multi-argument constructors; the
    ``__reduce__`` implementations preserve the real constructor args
    so ``ProcessShardScheduler`` re-raises original types with their
    structured fields (the satellite bugfix for ``run_sharded``).
    """

    @pytest.mark.parametrize(
        "exc",
        [
            TimeLimitExceeded(2.0, 3.5),
            MemoryBudgetExceeded(64, 128),
            StorageBudgetExceeded(1024, 4096),
        ],
    )
    def test_round_trip_preserves_type_and_fields(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        for attr in ("limit_seconds", "elapsed", "budget_bytes", "used_bytes"):
            if hasattr(exc, attr):
                assert getattr(clone, attr) == getattr(exc, attr)

    def test_round_trip_maps_to_paper_cells(self):
        from repro.bench.harness import failure_status

        clone = pickle.loads(pickle.dumps(MemoryBudgetExceeded(64, 128)))
        assert failure_status(clone) == "OOM"


class TestEventBus:
    def test_unknown_event_rejected(self):
        bus = EventBus()
        with pytest.raises(ValueError):
            bus.subscribe("made_up_event", lambda **kw: None)

    def test_emit_without_subscribers_is_a_noop(self):
        EventBus().emit(CANCEL, kind="lateral", count=1)

    def test_stats_subscriber_maps_lifecycle_events(self):
        stats = ConstraintStats()
        bus = EventBus()
        StatsSubscriber(stats).attach(bus)
        bus.emit(CANCEL, kind="lateral", count=3)
        bus.emit(CANCEL, kind="etask", count=2)
        bus.emit(PROMOTE, count=4)
        bus.emit(MATCH_CHECKED, count=5)
        assert stats.vtasks_canceled_lateral == 3
        assert stats.etasks_canceled == 2
        assert stats.promotions == 4
        assert stats.matches_checked == 5

    def test_event_log_records_everything(self):
        bus = EventBus()
        log = EventLog(bus)
        bus.emit(PROMOTE, count=1)
        bus.emit(CANCEL, kind="lateral", count=2)
        assert log.count(PROMOTE) == 1
        assert log.count(CANCEL) == 1
        assert log.records[1] == (CANCEL, {"kind": "lateral", "count": 2})
        assert bus.has_subscribers(MATCH_CHECKED)


class TestTaskContext:
    def test_create_wires_stats_to_the_bus(self):
        stats = ConstraintStats()
        ctx = TaskContext.create(stats=stats)
        ctx.emit(CANCEL, kind="lateral", count=7)
        assert stats.vtasks_canceled_lateral == 7

    def test_child_shares_budget_bus_stats_with_subordinate_token(self):
        ctx = TaskContext.create(time_limit=10.0, stats=ConstraintStats())
        child = ctx.child()
        assert child.budget is ctx.budget
        assert child.bus is ctx.bus
        assert child.stats is ctx.stats
        ctx.cancel("parent gone")
        assert child.cancelled
        grandchild = child.child()
        assert grandchild.cancelled

    def test_deadline_flows_through_the_context(self):
        ctx = TaskContext.create(time_limit=1e-9, check_interval=1)
        with pytest.raises(TimeLimitExceeded):
            ctx.check_deadline()


def lateral_scheduler(graph, cancellation=True):
    targets = [
        ValidationTarget(triangle(), bigger, graph, induced=True)
        for bigger in (
            quasi_clique_patterns(4, 0.8) + quasi_clique_patterns(5, 0.8)
        )
    ]
    return LateralScheduler(
        targets, graph, enable_cancellation=cancellation
    )


class TestParentCancellation:
    def test_cancelled_parent_cancels_all_pending_child_vtasks(self):
        g = erdos_renyi(10, 0.9, seed=1)
        scheduler = lateral_scheduler(g)
        stats = ConstraintStats()
        ctx = TaskContext.create(stats=stats)
        ctx.cancel("parent aborted")
        cache = SetOperationCache(stats=stats)
        result = scheduler.validate([0, 1, 2], g, cache, stats, ctx=ctx)
        assert result is None
        assert stats.vtasks_started == 0
        assert stats.vtasks_canceled_lateral == len(scheduler)

    def test_live_parent_runs_the_chain_normally(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])  # lone triangle
        scheduler = lateral_scheduler(g)
        stats = ConstraintStats()
        ctx = TaskContext.create(stats=stats)
        cache = SetOperationCache(stats=stats)
        assert (
            scheduler.validate([0, 1, 2], g, cache, stats, ctx=ctx)
            is None
        )
        assert stats.vtasks_started == len(scheduler)
        assert stats.vtasks_canceled_lateral == 0

    def test_lateral_match_cancels_chain_via_the_bus(self):
        g = erdos_renyi(10, 0.9, seed=1)  # nearly complete: contained
        scheduler = lateral_scheduler(g)
        stats = ConstraintStats()
        ctx = TaskContext.create(stats=stats)
        cache = SetOperationCache(stats=stats)
        hit = scheduler.validate([0, 1, 2], g, cache, stats, ctx=ctx)
        assert hit is not None
        assert (
            stats.vtasks_started + stats.vtasks_canceled_lateral
            == len(scheduler)
        )


class TestBridgeDeadline:
    """The shared deadline must fire *inside* VTask bridging recursion.

    A triangle → 5-clique validation bridges a two-level gap; with an
    expired budget the TLE must surface from within the bridge walk,
    not wait for the next subgraph boundary (the historic bug).
    """

    def _target(self, graph):
        return ValidationTarget(
            triangle(), clique(5), graph, induced=False
        )

    def test_expired_deadline_fires_inside_bridging(self):
        g = erdos_renyi(12, 0.95, seed=3)  # dense: deep bridge walks
        target = self._target(g)
        stats = ConstraintStats()
        ctx = TaskContext.create(
            time_limit=1e-9, stats=stats, check_interval=1
        )
        cache = SetOperationCache(stats=stats)
        with pytest.raises(TimeLimitExceeded):
            target.run([0, 1, 2], g, cache, stats, ctx=ctx)

    def test_without_context_the_bridge_completes(self):
        g = erdos_renyi(12, 0.95, seed=3)
        target = self._target(g)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        target.run([0, 1, 2], g, cache, stats)


class TestEventBusConcurrency:
    """The copy-on-write subscription contract (the daemon bug sweep).

    The historic failure mode: ``emit`` iterated the live handler list
    while another thread (or the handler itself) mutated it —
    ``RuntimeError: list changed size during iteration`` or silently
    skipped subscribers.  Handler lists are now immutable tuples
    replaced under a lock, so an in-flight emit always completes over
    its snapshot.
    """

    def test_handler_can_unsubscribe_itself_during_emit(self):
        bus = EventBus(strict=True)
        calls = []

        def once(**payload):
            calls.append(payload)
            assert bus.unsubscribe(CANCEL, once)

        def steady(**payload):
            calls.append(payload)

        bus.subscribe(CANCEL, once)
        bus.subscribe(CANCEL, steady)
        bus.emit(CANCEL, kind="lateral", count=1)
        # The self-removing handler ran once, the later subscriber was
        # not skipped by the removal, and the next emit skips `once`.
        assert len(calls) == 2
        bus.emit(CANCEL, kind="lateral", count=1)
        assert len(calls) == 3

    def test_unsubscribe_all_removes_bound_registrations(self):
        bus = EventBus(strict=True)
        log = EventLog(bus)  # subscribe_all under the hood
        bus.emit(PROMOTE, count=1)
        assert log.count(PROMOTE) == 1
        from repro.exec.events import EVENTS

        removed = bus.unsubscribe_all(log.record)
        assert removed == len(EVENTS)
        bus.emit(PROMOTE, count=1)
        assert log.count(PROMOTE) == 1  # no longer receiving

    def test_unsubscribe_unknown_handler_is_a_noop(self):
        bus = EventBus()
        assert bus.unsubscribe(CANCEL, lambda **p: None) is False
        assert bus.unsubscribe_all(lambda **p: None) == 0
        assert bus.unsubscribe_timed(lambda *a: None) is False

    def test_concurrent_emit_and_churn_never_corrupts_delivery(self):
        """Threads hammering subscribe/unsubscribe while others emit.

        Regression for the daemon scenario: long-lived bus, per-run
        subscribers attaching and detaching while worker threads emit.
        Under the old in-place list mutation this raised (iteration
        over a mutating list) or dropped handlers; with copy-on-write
        tuples every emit must complete and the persistent subscriber
        must see every single emit.
        """
        import threading

        bus = EventBus(strict=True)
        seen = []
        bus.subscribe(CANCEL, lambda **p: seen.append(1))
        stop = threading.Event()
        errors = []

        def churn():
            def ephemeral(**payload):
                bus.unsubscribe(CANCEL, ephemeral)  # self-removal

            try:
                while not stop.is_set():
                    bus.subscribe(CANCEL, ephemeral)
                    bus.emit(CANCEL, kind="lateral", count=1)
                    bus.unsubscribe(CANCEL, ephemeral)
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        emits_per_thread = 300
        def emitter():
            try:
                for _ in range(emits_per_thread):
                    bus.emit(CANCEL, kind="lateral", count=1)
            except Exception as exc:  # pragma: no cover - the bug
                errors.append(exc)

        churners = [threading.Thread(target=churn) for _ in range(2)]
        emitters = [threading.Thread(target=emitter) for _ in range(3)]
        for t in churners + emitters:
            t.start()
        for t in emitters:
            t.join()
        stop.set()
        for t in churners:
            t.join()
        assert errors == []
        # The persistent subscriber saw every emitter emit (plus the
        # churners' own emits); nothing was lost or double-counted.
        assert len(seen) >= 3 * emits_per_thread
