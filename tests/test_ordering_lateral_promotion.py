"""Tests for RL-Path ordering heuristics, lateral scheduling, promotion."""

import pytest

from repro.core import (
    LateralScheduler,
    PromotionRegistry,
    ValidationTarget,
    graph_is_dense,
    order_validation_targets,
    pattern_is_dense,
    prefer_sparse_first,
    resolve_strategy,
)
from repro.core.ordering import order_by_density, order_exploration_paths
from repro.graph import erdos_renyi
from repro.mining import ConstraintStats, SetOperationCache
from repro.patterns import (
    clique,
    cycle,
    house,
    path,
    quasi_clique_patterns,
    star,
    triangle,
)


class TestDecisionTree:
    def test_pattern_density_predicate(self):
        assert pattern_is_dense(clique(5))
        assert not pattern_is_dense(path(4))

    def test_dense_targets_prefer_sparse_first(self):
        g = erdos_renyi(20, 0.05, seed=0)
        assert prefer_sparse_first([clique(4), clique(5)], g)

    def test_sparse_targets_prefer_dense_first(self):
        g = erdos_renyi(20, 0.05, seed=0)
        assert not prefer_sparse_first([path(3), star(3)], g)

    def test_mixed_targets_follow_graph_density(self):
        dense_graph = erdos_renyi(20, 0.5, seed=0)
        sparse_graph = erdos_renyi(60, 0.005, seed=0)
        targets = [clique(4), path(3)]
        assert graph_is_dense(dense_graph)
        assert not graph_is_dense(sparse_graph)
        assert prefer_sparse_first(targets, dense_graph)
        assert not prefer_sparse_first(targets, sparse_graph)

    def test_resolve_strategy(self):
        g = erdos_renyi(10, 0.5, seed=0)
        targets = [clique(4)]
        assert resolve_strategy("sparse-first", targets, g)
        assert not resolve_strategy("dense-first", targets, g)
        assert resolve_strategy("heuristic", targets, g) == (
            not resolve_strategy("anti-heuristic", targets, g)
        )
        with pytest.raises(ValueError):
            resolve_strategy("nope", targets, g)

    def test_order_by_density(self):
        items = [clique(4), path(3), cycle(4)]
        ordered = order_by_density(items, lambda p: p.density, True)
        densities = [p.density for p in ordered]
        assert densities == sorted(densities)

    def test_lateral_order_inverts(self):
        g = erdos_renyi(20, 0.05, seed=0)
        targets = [clique(4), cycle(4)]
        exploration = order_exploration_paths(
            targets, lambda p: p.density, "heuristic", [clique(5)], g
        )
        lateral = order_validation_targets(
            targets, lambda p: p.density, "heuristic", [clique(5)], g
        )
        assert exploration == list(reversed(lateral))


class TestLateralScheduler:
    def _scheduler(self, graph, cancellation=True):
        targets = [
            ValidationTarget(triangle(), bigger, graph, induced=True)
            for bigger in (
                quasi_clique_patterns(4, 0.8) + quasi_clique_patterns(5, 0.8)
            )
        ]
        return LateralScheduler(
            targets, graph, enable_cancellation=cancellation
        )

    def test_match_cancels_remaining(self):
        g = erdos_renyi(10, 0.9, seed=1)  # nearly complete: contained
        scheduler = self._scheduler(g)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        hit = scheduler.validate([0, 1, 2], g, cache, stats)
        assert hit is not None
        assert stats.vtasks_started < len(scheduler)
        assert (
            stats.vtasks_started + stats.vtasks_canceled_lateral
            == len(scheduler)
        )

    def test_no_cancellation_runs_everything(self):
        g = erdos_renyi(10, 0.9, seed=1)
        scheduler = self._scheduler(g, cancellation=False)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        hit = scheduler.validate([0, 1, 2], g, cache, stats)
        assert hit is not None
        assert stats.vtasks_started == len(scheduler)
        assert stats.vtasks_canceled_lateral == 0

    def test_valid_subgraph_runs_all_vtasks(self):
        # a lone triangle: nothing contains it
        from repro.graph import graph_from_edges

        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        scheduler = self._scheduler(g)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        assert scheduler.validate([0, 1, 2], g, cache, stats) is None
        assert stats.vtasks_started == len(scheduler)


class TestPromotionRegistry:
    def test_mark_and_seen(self):
        registry = PromotionRegistry()
        key = (1, 2, 3)
        assert not registry.seen(triangle(), key)
        assert registry.mark(triangle(), key)
        assert registry.seen(triangle(), key)
        assert not registry.mark(triangle(), key)

    def test_patterns_are_separate_namespaces(self):
        registry = PromotionRegistry()
        registry.mark(triangle(), (1, 2, 3))
        assert not registry.seen(house(), (1, 2, 3))

    def test_count_and_clear(self):
        registry = PromotionRegistry()
        registry.mark(triangle(), (1, 2, 3))
        registry.mark(triangle(), (4, 5, 6))
        registry.mark(house(), (1, 2, 3, 4, 5))
        assert registry.count() == 3
        registry.clear()
        assert registry.count() == 0
