"""Dataset stability: benchmark inputs must never drift silently.

The experiment record in EXPERIMENTS.md is only meaningful if the
synthetic analogs are bit-stable across runs and machines.  These
tests pin their exact shapes; if a generator or a dataset recipe
changes, they fail loudly and EXPERIMENTS.md must be re-measured.
"""

import pytest

from repro.bench import dataset, dataset_keys, spec

# (vertices, edges, distinct labels) per analog — update deliberately,
# together with EXPERIMENTS.md, never accidentally.
PINNED = {
    "amazon": (170, 337, 0),
    "dblp": (252, 734, 0),
    "mico": (224, 919, 26),
    "patents": (420, 1254, 33),
    "youtube": (620, 2470, 23),
    "products": (396, 1506, 44),
}


class TestPinnedShapes:
    @pytest.mark.parametrize("key", list(PINNED))
    def test_exact_shape(self, key):
        g = dataset(key)
        assert (
            g.num_vertices, g.num_edges, g.num_labels
        ) == PINNED[key], (
            f"{key} analog changed shape; re-measure EXPERIMENTS.md"
        )

    def test_all_datasets_pinned(self):
        assert set(PINNED) == set(dataset_keys())

    def test_density_ordering_supports_experiments(self):
        """The analogs must keep baselines degrading in dataset order:
        the four larger/denser graphs dominate the two small ones in
        edge count."""
        small = max(
            dataset(k).num_edges for k in ("amazon", "dblp")
        )
        for key in ("mico", "patents", "youtube", "products"):
            assert dataset(key).num_edges > small

    def test_first_edges_stable(self):
        """Spot-check actual structure, not just aggregate counts."""
        g = dataset("amazon")
        first = sorted(g.edges())[:5]
        assert first == sorted(g.edges())[:5]
        assert all(0 <= u < g.num_vertices for u, _ in first)
        # determinism across rebuilds
        rebuilt = spec("amazon").build()
        assert list(rebuilt.edges())[:20] == list(g.edges())[:20]
