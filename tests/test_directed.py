"""Tests for the directed-graph extension (§2.1's directed note)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import (
    DiGraph,
    DiGraphBuilder,
    directed_citation_graph,
    directed_erdos_renyi,
)
from repro.mining.directed import (
    di_brute_force_matches,
    di_count,
    di_matches,
    directed_containment_query,
)
from repro.patterns.dipattern import (
    DiPattern,
    choose_di_order,
    di_automorphisms,
    di_plan_for,
    di_symmetry_conditions,
)


def di_triangle_cycle():
    """Directed 3-cycle 0 -> 1 -> 2 -> 0."""
    return DiPattern(3, [(0, 1), (1, 2), (2, 0)], name="c3")


def di_path2():
    """0 -> 1 -> 2."""
    return DiPattern(3, [(0, 1), (1, 2)], name="p2")


def feed_forward():
    """The feed-forward loop motif: 0 -> 1, 0 -> 2, 1 -> 2."""
    return DiPattern(3, [(0, 1), (0, 2), (1, 2)], name="ffl")


class TestDiGraph:
    def test_builder_and_accessors(self):
        b = DiGraphBuilder()
        b.add_arcs([(0, 1), (1, 2), (2, 0), (0, 1)])
        g = b.build()
        assert g.num_edges == 3
        assert g.has_arc(0, 1)
        assert not g.has_arc(1, 0)
        assert g.successors(0) == (1,)
        assert g.predecessors(0) == (2,)
        assert g.out_degree(0) == 1 and g.in_degree(0) == 1

    def test_self_loops_ignored(self):
        b = DiGraphBuilder()
        b.add_arc(0, 0)
        b.add_arc(0, 1)
        assert b.build().num_edges == 1

    def test_transpose_validation(self):
        with pytest.raises(ValueError):
            DiGraph([(1,), ()], [(), ()])

    def test_arcs_iteration(self):
        b = DiGraphBuilder()
        b.add_arcs([(0, 1), (1, 2)])
        assert sorted(b.build().arcs()) == [(0, 1), (1, 2)]

    def test_generators_deterministic(self):
        a = directed_erdos_renyi(20, 0.1, seed=1)
        b = directed_erdos_renyi(20, 0.1, seed=1)
        assert list(a.arcs()) == list(b.arcs())
        cite = directed_citation_graph(30, 3, seed=2)
        assert cite.num_vertices == 30
        # citations point backwards: new -> old, so vertex 0 has out 0
        assert cite.out_degree(0) == 0


class TestDiPattern:
    def test_direction_matters(self):
        assert di_triangle_cycle() != feed_forward()
        assert di_triangle_cycle().has_arc(0, 1)
        assert not di_triangle_cycle().has_arc(1, 0)

    def test_automorphisms_cycle(self):
        # directed 3-cycle: rotations only (3), no reflections
        assert len(di_automorphisms(di_triangle_cycle())) == 3

    def test_automorphisms_ffl(self):
        # the feed-forward loop is rigid
        assert len(di_automorphisms(feed_forward())) == 1

    def test_symmetry_conditions_break_rotations(self):
        conditions = di_symmetry_conditions(di_triangle_cycle())
        assert conditions  # non-trivial group needs conditions

    def test_order_weakly_connected(self):
        order = choose_di_order(feed_forward())
        assert sorted(order) == [0, 1, 2]
        with pytest.raises(ValueError):
            choose_di_order(DiPattern(3, [(0, 1)]))

    def test_plan_anchors_directional(self):
        plan = di_plan_for(di_path2())
        # every non-root step anchors on at least one direction
        for i in range(1, plan.num_steps):
            assert plan.out_anchors[i] or plan.in_anchors[i]


class TestDirectedMatching:
    def _oracle_count(self, graph, pattern):
        return len(di_brute_force_matches(graph, pattern)) // len(
            di_automorphisms(pattern)
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize(
        "pattern",
        [di_triangle_cycle(), di_path2(), feed_forward()],
        ids=lambda p: p.name,
    )
    def test_counts_match_oracle(self, seed, pattern):
        g = directed_erdos_renyi(12, 0.15, seed=seed)
        assert di_count(g, pattern) == self._oracle_count(g, pattern)

    def test_matches_respect_arcs(self):
        g = directed_erdos_renyi(12, 0.2, seed=7)
        for assignment in di_matches(g, feed_forward()):
            assert g.has_arc(assignment[0], assignment[1])
            assert g.has_arc(assignment[0], assignment[2])
            assert g.has_arc(assignment[1], assignment[2])

    def test_each_match_once(self):
        g = directed_erdos_renyi(12, 0.2, seed=8)
        matches = list(di_matches(g, di_triangle_cycle()))
        assert len(matches) == len(set(matches))

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_counts(self, seed):
        g = directed_erdos_renyi(10, 0.2, seed=seed)
        for pattern in (di_path2(), feed_forward()):
            assert di_count(g, pattern) == self._oracle_count(g, pattern)

    def test_labeled_matching(self):
        b = DiGraphBuilder()
        b.add_vertex(0, label=1)
        b.add_vertex(1, label=2)
        b.add_vertex(2, label=1)
        b.add_arcs([(0, 1), (1, 2)])
        g = b.build()
        labeled = DiPattern(2, [(0, 1)], labels=[1, 2])
        assert di_count(g, labeled) == 1


class TestDirectedContainment:
    def test_ffl_not_in_diamond(self):
        """Feed-forward loops not contained in a 'directed diamond'
        (0->1, 0->2, 1->3, 2->3 plus the ffl arcs)."""
        bigger = DiPattern(
            4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)], name="ffl-plus"
        )
        for seed in range(4):
            g = directed_erdos_renyi(11, 0.18, seed=seed)
            got = directed_containment_query(g, feed_forward(), [bigger])
            # oracle: brute-force both pattern's matches
            aut = di_automorphisms(feed_forward())
            expected = set()
            for raw in di_brute_force_matches(g, feed_forward()):
                ordered = tuple(raw[v] for v in range(3))
                canonical = min(
                    tuple(ordered[sigma[v]] for v in range(3))
                    for sigma in aut
                )
                contained = any(
                    all(
                        big_raw[bv] == ordered[sv]
                        for sv, bv in mapping.items()
                    )
                    for big_raw in di_brute_force_matches(g, bigger)
                    for mapping in _embeddings_oracle(feed_forward(), bigger)
                )
                if not contained:
                    expected.add(canonical)
            got_canonical = {
                min(
                    tuple(a[sigma[v]] for v in range(3)) for sigma in aut
                )
                for a in got
            }
            assert got_canonical == expected

    def test_stats_populated(self):
        from repro.mining import ConstraintStats

        g = directed_erdos_renyi(10, 0.2, seed=3)
        stats = ConstraintStats()
        directed_containment_query(
            g, di_path2(),
            [DiPattern(4, [(0, 1), (1, 2), (2, 3)])],
            stats=stats,
        )
        assert stats.matches_checked > 0


def _embeddings_oracle(small, big):
    """All arc-preserving injections small -> big (plain dicts)."""
    results = []
    mapping = {}
    used = set()

    def extend(v):
        if v == small.num_vertices:
            results.append(dict(mapping))
            return
        for w in big.vertices():
            if w in used:
                continue
            ok = True
            for prev, image in mapping.items():
                if small.has_arc(v, prev) and not big.has_arc(w, image):
                    ok = False
                    break
                if small.has_arc(prev, v) and not big.has_arc(image, w):
                    ok = False
                    break
            if not ok:
                continue
            mapping[v] = w
            used.add(w)
            extend(v + 1)
            del mapping[v]
            used.discard(w)

    extend(0)
    return results
