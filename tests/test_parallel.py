"""Tests for process-sharded execution of the Contigra runtime."""

import pytest

from repro.baselines.naive import (
    maximal_quasi_cliques as oracle_mqc,
    nested_query_matches,
)
from repro.core import maximality_constraints, nested_query_constraints
from repro.core.parallel import run_sharded
from repro.graph import erdos_renyi
from repro.patterns import quasi_clique_patterns_up_to


def mqc_constraints(gamma=0.7, max_size=5):
    return maximality_constraints(
        quasi_clique_patterns_up_to(max_size, gamma), induced=True
    )


class TestSharding:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_mqc_matches_oracle(self, workers):
        g = erdos_renyi(18, 0.4, seed=1)
        result = run_sharded(g, mqc_constraints(), n_workers=workers)
        assert set(result.vertex_sets()) == oracle_mqc(g, 0.7, 3, 5)

    def test_single_worker_is_serial_path(self):
        g = erdos_renyi(14, 0.4, seed=2)
        result = run_sharded(g, mqc_constraints(), n_workers=1)
        assert set(result.vertex_sets()) == oracle_mqc(g, 0.7, 3, 5)

    def test_nsq_sharded(self):
        from repro.apps.nsq import paper_query_triangles

        g = erdos_renyi(15, 0.2, seed=3)
        p_m, p_plus = paper_query_triangles()
        cs = nested_query_constraints(p_m, p_plus)
        result = run_sharded(g, cs, n_workers=3)
        assert set(result.assignments()) == nested_query_matches(
            g, p_m, p_plus
        )

    def test_results_deduplicated_across_shards(self):
        g = erdos_renyi(16, 0.45, seed=4)
        result = run_sharded(g, mqc_constraints(), n_workers=4)
        assert len(result.valid) == len(set(result.valid))

    def test_counters_accumulate(self):
        g = erdos_renyi(16, 0.45, seed=5)
        serial = run_sharded(g, mqc_constraints(), n_workers=1)
        sharded = run_sharded(g, mqc_constraints(), n_workers=3)
        # every match is explored exactly once across shards
        assert sharded.stats.matches_found == serial.stats.matches_found
        assert sharded.stats.vtasks_started > 0

    def test_engine_options_forwarded(self):
        g = erdos_renyi(14, 0.45, seed=6)
        result = run_sharded(
            g,
            mqc_constraints(),
            n_workers=2,
            engine_options={"enable_promotion": False},
        )
        assert result.stats.promotions == 0
        assert set(result.vertex_sets()) == oracle_mqc(g, 0.7, 3, 5)

    def test_invalid_workers(self):
        g = erdos_renyi(6, 0.5, seed=0)
        with pytest.raises(ValueError):
            run_sharded(g, mqc_constraints(), n_workers=0)
