"""Extended maximal-clique tests: Bron–Kerbosch as the anchor oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    bron_kerbosch,
    maximal_cliques_contigra,
    maximal_cliques_reference,
)
from repro.graph import erdos_renyi, graph_from_edges

from conftest import graph_strategy


class TestBKProperties:
    @given(graph_strategy(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_cliques_are_maximal_cliques(self, g):
        from repro.graph import is_clique

        cliques = bron_kerbosch(g)
        for c in cliques:
            assert is_clique(g, sorted(c))
            # maximality: no vertex extends it
            for v in g.vertices():
                if v in c:
                    continue
                assert not all(g.has_edge(v, u) for u in c)

    @given(graph_strategy(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_every_vertex_covered(self, g):
        if g.num_vertices == 0:
            return
        covered = set().union(*bron_kerbosch(g))
        assert covered == set(g.vertices())


class TestCappedSemantics:
    @given(st.integers(0, 10_000), st.sampled_from([3, 4, 5]))
    @settings(max_examples=15, deadline=None)
    def test_contigra_equals_reference(self, seed, cap):
        g = erdos_renyi(13, 0.5, seed=seed)
        got = maximal_cliques_contigra(g, max_size=cap).all_sets()
        assert got == maximal_cliques_reference(g, max_size=cap)

    def test_reference_handles_oversized_cliques(self):
        # K5 capped at 3: every triangle inside is capped-maximal.
        g = graph_from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        reference = maximal_cliques_reference(g, max_size=3)
        assert len(reference) == 10  # C(5,3)

    def test_min_size_filters(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (3, 4)])
        got = maximal_cliques_contigra(g, max_size=4, min_size=3).all_sets()
        # the lone edge 3-4 is below min_size
        assert got == {frozenset({0, 1, 2})}
