"""Failure-injection tests: deadlines and budgets firing mid-run.

Every long-running entry point must honor its budget, raise the right
exception, and leave no corrupted module-level state behind (the next
run must succeed and be correct).
"""

import pytest

from repro.apps import keyword_search, maximal_quasi_cliques
from repro.baselines import (
    TThinkerConfig,
    posthoc_kws,
    posthoc_mqc,
    tthinker_mqc,
)
from repro.baselines.naive import maximal_quasi_cliques as oracle_mqc
from repro.errors import (
    MemoryBudgetExceeded,
    StorageBudgetExceeded,
    TimeLimitExceeded,
)
from repro.graph import erdos_renyi

from conftest import labeled_random_graph


def big_graph():
    return erdos_renyi(80, 0.35, seed=42)


class TestDeadlines:
    def test_contigra_mqc_deadline(self):
        with pytest.raises(TimeLimitExceeded) as info:
            maximal_quasi_cliques(big_graph(), 0.6, 6, time_limit=0.02)
        assert info.value.elapsed >= 0

    def test_posthoc_mqc_deadline(self):
        with pytest.raises(TimeLimitExceeded):
            posthoc_mqc(big_graph(), 0.6, 6, time_limit=0.02)

    def test_kws_deadline(self):
        g = labeled_random_graph(70, 0.3, num_labels=6, seed=1)
        with pytest.raises(TimeLimitExceeded):
            keyword_search(
                g, [0, 1, 2], 5, time_limit=0.005,
                collect_workload_stats=False,
            )

    def test_posthoc_kws_deadline(self):
        g = labeled_random_graph(70, 0.3, num_labels=6, seed=1)
        with pytest.raises(TimeLimitExceeded):
            posthoc_kws(g, [0, 1, 2], 5, time_limit=0.005)

    def test_tthinker_deadline(self):
        with pytest.raises(TimeLimitExceeded):
            tthinker_mqc(
                big_graph(), 0.6, 6,
                config=TThinkerConfig(time_limit=0.005),
            )


class TestBudgets:
    def test_oom_before_oos_when_memory_tiny(self):
        config = TThinkerConfig(
            memory_budget_bytes=64, storage_budget_bytes=10**9
        )
        with pytest.raises(MemoryBudgetExceeded):
            tthinker_mqc(big_graph(), 0.7, 5, config=config)

    def test_oos_before_oom_when_storage_tiny(self):
        config = TThinkerConfig(
            memory_budget_bytes=10**9, storage_budget_bytes=64
        )
        with pytest.raises(StorageBudgetExceeded):
            tthinker_mqc(big_graph(), 0.7, 5, config=config)


class TestRecoveryAfterFailure:
    """A failed run must not poison shared module state."""

    def test_contigra_correct_after_tle(self):
        g = big_graph()
        with pytest.raises(TimeLimitExceeded):
            maximal_quasi_cliques(g, 0.6, 6, time_limit=0.02)
        small = erdos_renyi(14, 0.45, seed=7)
        result = maximal_quasi_cliques(small, 0.7, 5)
        assert result.all_sets() == oracle_mqc(small, 0.7, 3, 5)

    def test_tthinker_correct_after_oom(self):
        config = TThinkerConfig(memory_budget_bytes=64)
        with pytest.raises(MemoryBudgetExceeded):
            tthinker_mqc(big_graph(), 0.7, 5, config=config)
        small = erdos_renyi(14, 0.45, seed=7)
        assert tthinker_mqc(small, 0.7, 5).maximal == oracle_mqc(
            small, 0.7, 3, 5
        )

    def test_kws_correct_after_tle(self):
        g = labeled_random_graph(70, 0.3, num_labels=6, seed=1)
        with pytest.raises(TimeLimitExceeded):
            keyword_search(
                g, [0, 1, 2], 5, time_limit=0.005,
                collect_workload_stats=False,
            )
        small = labeled_random_graph(14, 0.3, num_labels=4, seed=2)
        from repro.baselines.naive import minimal_keyword_covers

        got = keyword_search(
            small, [0, 1], 4, collect_workload_stats=False
        ).minimal
        assert got == minimal_keyword_covers(small, [0, 1], 4)
