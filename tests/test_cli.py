"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import graph_from_edges
from repro.graph.io import write_edge_list, write_labels


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mqc_defaults(self):
        args = build_parser().parse_args(["mqc", "--dataset", "dblp"])
        args_dict = vars(args)
        assert args_dict["gamma"] == 0.8
        assert args_dict["max_size"] == 5


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "amazon" in out
        assert "Youtube" in out

    def test_mqc_on_dataset(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--gamma", "0.8",
             "--max-size", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["maximal_quasi_cliques"] > 0
        assert "cache_hit_rate" in payload

    def test_quasicliques_fused_flag(self, capsys):
        assert main(
            ["quasicliques", "--dataset", "dblp", "--max-size", "4",
             "--fused", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mode"] == "fused"

    def test_kws_mf(self, capsys):
        assert main(
            ["kws", "--dataset", "mico", "--keywords", "mf",
             "--max-size", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["patterns_total"] > 0

    def test_kws_explicit_keywords(self, capsys):
        assert main(
            ["kws", "--dataset", "mico", "--keywords", "0,1",
             "--max-size", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["keywords"] == [0, 1]

    def test_nsq(self, capsys):
        assert main(
            ["nsq", "--dataset", "amazon", "--query", "triangles",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "valid_matches" in payload

    def test_graph_file_input(self, tmp_path, capsys):
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        )
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        assert main(
            ["mqc", "--graph", path, "--gamma", "1.0",
             "--max-size", "3", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["maximal_quasi_cliques"] == 2  # two triangles

    def test_missing_graph_source(self):
        with pytest.raises(SystemExit):
            main(["mqc"])

    def test_explain(self, capsys):
        assert main(
            ["explain", "--dataset", "dblp", "--gamma", "0.8",
             "--max-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "VTask schedule" in out
        assert "matching order" in out

    def test_human_readable_output(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "maximal_quasi_cliques:" in out

    def test_explain_json_format(self, capsys):
        assert main(
            ["explain", "--dataset", "dblp", "--gamma", "0.8",
             "--max-size", "4", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "mqc"
        assert "VTask schedule" in payload["explain"]


class TestAnalyze:
    def test_selfcheck_clean(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_selfcheck_json(self, capsys):
        assert main(["analyze", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0

    def test_clean_query(self, capsys):
        assert main(
            ["analyze", "--pattern", "0-1, 1-2, 0-2",
             "--not-within", "0-1, 1-2, 0-2, 0-3"]
        ) == 0

    def test_unsatisfiable_query_exits_nonzero(self, capsys):
        assert main(
            ["analyze", "--pattern", "0-1, 1-2, 0-2",
             "--not-within", "0-1, 1-2, 0-2; vertices 4",
             "--format", "json"]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert any(
            d["code"].startswith("CG1") or d["code"] == "CG001"
            for d in payload["diagnostics"]
        )

    def test_parse_error_reported_as_cg004(self, capsys):
        assert main(["analyze", "--pattern", "0-0"]) == 1
        out = capsys.readouterr().out
        assert "CG004" in out
        assert "self loop" in out

    def test_suppress_downgrades_exit(self, capsys):
        # CG202 is the only error in this degenerate workload text;
        # suppressing it flips the exit code.
        args = ["analyze", "--pattern", "0-1, 1-2, 0-2",
                "--not-within", "0-1, 2-3; vertices 4"]
        assert main(args) == 1
        capsys.readouterr()
        assert main(args + ["--suppress", "CG001,CG103"]) == 0

    def test_kws_workload(self, capsys):
        assert main(
            ["analyze", "--workload", "kws", "--keywords", "0,1",
             "--max-size", "3", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "CG201" in codes

    def test_mqc_workload(self, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4"]
        ) == 0


class TestAnalyzeExitCodeContract:
    """Error-severity findings exit nonzero under EVERY --format value.

    The daemon admission gate shells out to ``repro analyze`` and
    branches on the exit code alone; a format that swallowed the
    failure would silently admit bad queries.
    """

    ERROR_QUERY = ["analyze", "--pattern", "0-1, 1-2, 0-2",
                   "--not-within", "0-1, 1-2, 0-2; vertices 4"]
    CLEAN_QUERY = ["analyze", "--pattern", "0-1, 1-2, 0-2",
                   "--not-within", "0-1, 1-2, 0-2, 0-3"]

    @pytest.mark.parametrize("fmt", ["text", "json", "explain"])
    def test_error_exits_nonzero(self, fmt, capsys):
        assert main(self.ERROR_QUERY + ["--format", fmt]) == 1
        capsys.readouterr()

    @pytest.mark.parametrize("fmt", ["text", "json", "explain"])
    def test_clean_exits_zero(self, fmt, capsys):
        assert main(self.CLEAN_QUERY + ["--format", fmt]) == 0
        capsys.readouterr()

    @pytest.mark.parametrize("fmt", ["text", "json", "explain"])
    def test_estimate_budget_violation_exits_nonzero(self, fmt, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4",
             "--estimate", "--dataset", "dblp",
             "--budget-seconds", "0.0001", "--format", fmt]
        ) == 1
        capsys.readouterr()

    def test_explain_format_names_the_codes(self, capsys):
        assert main(self.ERROR_QUERY + ["--format", "explain"]) == 1
        out = capsys.readouterr().out
        assert "error" in out
        assert "docs/analysis.md" in out


class TestAnalyzeEstimate:
    def test_estimate_requires_graph_source(self):
        with pytest.raises(SystemExit):
            main(["analyze", "--workload", "mqc", "--estimate"])

    def test_estimate_json_payload(self, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4",
             "--estimate", "--dataset", "dblp", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        estimate = payload["estimate"]
        assert estimate["total_candidates"] > 0
        assert estimate["recommended"]["scheduler"] in (
            "serial", "workqueue", "process"
        )
        assert {d["code"] for d in payload["diagnostics"]} >= {"CG605"}

    def test_estimate_on_graph_file(self, tmp_path, capsys):
        g = graph_from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]
        )
        path = str(tmp_path / "g.txt")
        write_edge_list(g, path)
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "3",
             "--estimate", "--graph", path, "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        # Tiny graph: the estimator flags itself uncalibrated.
        assert "CG604" in {d["code"] for d in payload["diagnostics"]}


class TestAdmissionGate:
    def test_off_by_default_no_admission_record(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "admission" not in payload
        assert payload["workers"] == 2

    def test_warn_mode_records_and_proceeds(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4",
             "--time-limit", "60", "--admission", "warn", "--json"]
        ) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        admission = payload["admission"]
        assert admission["mode"] == "warn"
        assert admission["admitted"] is True
        assert admission["estimated_candidates"] > 0
        assert admission["actual_candidates"] > 0
        assert 0.1 <= admission["estimate_error_ratio"] <= 10.0
        assert admission["recommended"]["adjacency"] == "auto"
        assert "admission:" in captured.err

    def test_warn_mode_proceeds_past_projected_violation(self, capsys):
        # warn prints the CG601 projection but still starts the run —
        # which then genuinely hits the time limit (proving the gate
        # did not block; strict mode would have exited 2 first).
        from repro.exec.context import TimeLimitExceeded

        with pytest.raises(TimeLimitExceeded):
            main(
                ["mqc", "--dataset", "dblp", "--max-size", "4",
                 "--time-limit", "0.0001", "--admission", "warn"]
            )
        assert "CG601" in capsys.readouterr().err

    def test_strict_mode_rejects_with_exit_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mqc", "--dataset", "dblp", "--max-size", "4",
                 "--time-limit", "0.0001", "--admission", "strict"]
            )
        assert excinfo.value.code == 2
        assert "CG601" in capsys.readouterr().err

    def test_nsq_admission_metric_export(self, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.prom"
        assert main(
            ["nsq", "--dataset", "dblp", "--admission", "warn",
             "--metrics", str(metrics_file), "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "admission" in payload
        assert "repro_estimate_error_ratio" in payload["metrics"]
        assert "repro_estimate_error_ratio" in metrics_file.read_text()


class TestSchedulerFlags:
    def test_mqc_scheduler_workqueue_json_counters(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4",
             "--scheduler", "workqueue", "--workers", "2",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scheduler"] == "workqueue"
        assert payload["wall_time_seconds"] > 0
        counters = payload["counters"]
        assert counters["matches_found"] > 0
        assert "vtasks_canceled_lateral" in counters
        assert "promotions" in counters

    def test_mqc_trace_and_metrics_exports(self, tmp_path, capsys):
        from repro.obs import validate_chrome_trace, validate_prometheus

        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.prom"
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4",
             "--scheduler", "workqueue", "--workers", "2",
             "--trace", str(trace_file), "--metrics", str(metrics_file),
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_file"] == str(trace_file)
        assert payload["trace_coverage"] >= 0.95
        assert payload["metrics"]["repro_matches_total"] > 0
        assert validate_chrome_trace(trace_file.read_text()) == []
        assert validate_prometheus(metrics_file.read_text()) == []
        # the trace subcommand renders the saved file as a span tree
        assert main(["trace", str(trace_file)]) == 0
        rendered = capsys.readouterr().out
        assert "run" in rendered and "pattern" in rendered

    def test_trace_subcommand_rejects_invalid_file(
        self, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": [{"name": "x"}]}')
        assert main(["trace", str(bad)]) == 1
        assert "ph" in capsys.readouterr().err

    def test_untraced_run_has_no_observability_fields(self, capsys):
        assert main(
            ["nsq", "--dataset", "dblp", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" not in payload
        assert "trace_file" not in payload

    def test_text_output_stays_a_short_summary(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4",
             "--scheduler", "serial"]
        ) == 0
        out = capsys.readouterr().out
        assert "maximal_quasi_cliques:" in out
        assert "counters" not in out

    def test_nsq_scheduler_matches_serial(self, capsys):
        assert main(
            ["nsq", "--dataset", "dblp", "--format", "json"]
        ) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(
            ["nsq", "--dataset", "dblp", "--scheduler", "workqueue",
             "--format", "json"]
        ) == 0
        sharded = json.loads(capsys.readouterr().out)
        assert sharded["valid_matches"] == serial["valid_matches"]
        assert sharded["scheduler"] == "workqueue"

    def test_unknown_scheduler_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mqc", "--dataset", "dblp", "--scheduler", "bogus"]
            )


class TestAnalyzeScheduler:
    def test_mqc_workload_process_scheduler_warns(self, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4",
             "--scheduler", "process", "--format", "json"]
        ) == 0  # warnings never fail the command
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "CG502" in codes
        assert "CG503" in codes

    def test_serial_scheduler_is_silent(self, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4",
             "--scheduler", "serial", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert not any(code.startswith("CG5") for code in codes)

    def test_unknown_scheduler_is_an_error(self, capsys):
        assert main(
            ["analyze", "--workload", "mqc", "--max-size", "4",
             "--scheduler", "bogus"]
        ) == 1
        assert "CG501" in capsys.readouterr().out

    def test_kws_workload_scheduler_ignored(self, capsys):
        assert main(
            ["analyze", "--workload", "kws", "--keywords", "0,1",
             "--max-size", "3", "--scheduler", "workqueue",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        codes = {d["code"] for d in payload["diagnostics"]}
        assert "CG505" in codes


class TestGraphStoreCli:
    def test_graphs_lists_registered_versions(self, capsys):
        from repro.bench import dataset
        from repro.graph.store import graph_store

        graph_store().register(dataset("dblp"), "dblp")
        assert main(["graphs"]) == 0
        out = capsys.readouterr().out
        assert "dblp@v1" in out
        assert "derived cache:" in out

    def test_graphs_json_payload(self, capsys):
        assert main(["graphs", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "graphs", "unmaterialized_datasets", "derived_cache",
        }
        assert set(payload["derived_cache"]) == {
            "hits", "misses", "invalidations",
        }

    def test_graph_flag_resolves_store_ref(self, capsys):
        assert main(
            ["mqc", "--graph", "dblp@latest", "--gamma", "0.8",
             "--max-size", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["maximal_quasi_cliques"] > 0
        assert payload["graph"]["version"].startswith("dblp-s@")
        assert len(payload["graph"]["fingerprint"]) == 64
        assert set(payload["derived_cache"]) == {
            "hits", "misses", "invalidations",
        }

    def test_graph_flag_unknown_ref_errors(self):
        with pytest.raises(SystemExit, match="unknown graph"):
            main(["mqc", "--graph", "nosuch@v3", "--max-size", "4"])

    def test_graph_flag_still_accepts_files(self, tmp_path, capsys):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        path = tmp_path / "toy.txt"
        write_edge_list(g, path)
        assert main(
            ["mqc", "--graph", str(path), "--max-size", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"]["fingerprint"] == g.fingerprint

    def test_admission_record_carries_fingerprint(self, capsys):
        assert main(
            ["mqc", "--dataset", "dblp", "--max-size", "4",
             "--admission", "warn", "--time-limit", "60", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        record = payload["admission"]
        assert record["graph"].startswith("dblp-s@")
        assert len(record["graph_fingerprint"]) == 64
