"""Tests for the Peregrine+ post-hoc baselines and the TThinker sim."""

import pytest

from repro.baselines import (
    TThinkerConfig,
    posthoc_kws,
    posthoc_mqc,
    posthoc_nsq,
    tthinker_mqc,
)
from repro.baselines.naive import (
    all_quasi_cliques,
    maximal_quasi_cliques as oracle_mqc,
    minimal_keyword_covers,
    nested_query_matches,
)
from repro.apps.nsq import paper_query_triangles
from repro.errors import (
    MemoryBudgetExceeded,
    StorageBudgetExceeded,
    TimeLimitExceeded,
)
from repro.graph import erdos_renyi

from conftest import labeled_random_graph


class TestPostHocMQC:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("gamma", [0.6, 0.8])
    def test_matches_oracle(self, seed, gamma):
        g = erdos_renyi(14, 0.45, seed=seed)
        assert posthoc_mqc(g, gamma, 5).valid == oracle_mqc(g, gamma, 3, 5)

    def test_without_maximality_returns_all(self):
        g = erdos_renyi(14, 0.45, seed=1)
        result = posthoc_mqc(g, 0.7, 5, check_maximality=False)
        assert result.valid == all_quasi_cliques(g, 0.7, 3, 5)
        assert result.stats.constraint_checks == 0

    def test_graphpi_schedule_agrees(self):
        g = erdos_renyi(13, 0.45, seed=2)
        a = posthoc_mqc(g, 0.7, 5, schedule="peregrine")
        b = posthoc_mqc(g, 0.7, 5, schedule="graphpi")
        assert a.valid == b.valid
        # graphpi variant has no exploration cache
        assert b.stats.cache_hits == 0

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError):
            posthoc_mqc(erdos_renyi(5, 0.5, seed=0), 0.7, 4, schedule="x")

    def test_checks_counted(self):
        g = erdos_renyi(14, 0.5, seed=3)
        result = posthoc_mqc(g, 0.7, 5)
        assert result.stats.matches_checked > 0
        assert result.stats.constraint_checks > 0

    def test_time_limit(self):
        g = erdos_renyi(60, 0.4, seed=4)
        with pytest.raises(TimeLimitExceeded):
            posthoc_mqc(g, 0.6, 6, time_limit=0.01)


class TestPostHocNSQandKWS:
    def test_nsq_matches_oracle(self):
        g = erdos_renyi(14, 0.22, seed=5)
        p_m, p_plus = paper_query_triangles()
        result = posthoc_nsq(g, p_m, p_plus)
        assert result.assignments == nested_query_matches(g, p_m, p_plus)

    def test_kws_matches_oracle(self):
        g = labeled_random_graph(15, 0.25, num_labels=5, seed=6)
        result = posthoc_kws(g, [0, 1, 2], 5)
        assert result.valid == minimal_keyword_covers(g, [0, 1, 2], 5)

    def test_kws_checks_every_cover(self):
        g = labeled_random_graph(15, 0.3, num_labels=4, seed=7)
        result = posthoc_kws(g, [0, 1], 4)
        # post-hoc checks at least as many matches as it reports
        assert result.stats.matches_checked >= len(result.valid)


class TestTThinker:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("gamma", [0.6, 0.8])
    def test_matches_oracle(self, seed, gamma):
        g = erdos_renyi(14, 0.45, seed=seed)
        assert tthinker_mqc(g, gamma, 5).maximal == oracle_mqc(
            g, gamma, 3, 5
        )

    def test_low_gamma_rejected(self):
        with pytest.raises(ValueError):
            tthinker_mqc(erdos_renyi(5, 0.5, seed=0), 0.4, 4)

    def test_accounting_populated(self):
        g = erdos_renyi(14, 0.5, seed=8)
        result = tthinker_mqc(g, 0.7, 5)
        acct = result.accounting
        assert acct.candidates_buffered > 0
        assert acct.tasks_created > 0
        assert acct.candidate_bytes > 0
        assert acct.peak_memory_bytes > 0
        assert acct.live_bytes == 0  # all recursion frames released

    def test_memory_budget_raises_oom(self):
        g = erdos_renyi(20, 0.5, seed=9)
        config = TThinkerConfig(memory_budget_bytes=256)
        with pytest.raises(MemoryBudgetExceeded):
            tthinker_mqc(g, 0.7, 5, config=config)

    def test_storage_budget_raises_oos(self):
        g = erdos_renyi(20, 0.5, seed=9)
        config = TThinkerConfig(storage_budget_bytes=512)
        with pytest.raises(StorageBudgetExceeded):
            tthinker_mqc(g, 0.7, 5, config=config)

    def test_time_budget_raises_tle(self):
        g = erdos_renyi(40, 0.5, seed=10)
        config = TThinkerConfig(time_limit=0.001)
        with pytest.raises(TimeLimitExceeded):
            tthinker_mqc(g, 0.6, 6, config=config)

    def test_candidates_examined_in_postprocess(self):
        g = erdos_renyi(14, 0.5, seed=11)
        result = tthinker_mqc(g, 0.7, 5)
        assert result.candidates_examined == (
            result.accounting.candidates_buffered
        )
