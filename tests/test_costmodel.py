"""Tests for the CG6xx static cost model and the admission gate."""

import json
import pickle

import pytest

from repro.analysis import (
    check_estimate,
    estimate_constraint_set,
    estimate_plan,
    estimate_query_spec,
)
from repro.apps import maximal_quasi_cliques, nested_subgraph_query
from repro.apps.nsq import paper_query_triangles
from repro.bench import dataset
from repro.cli import main
from repro.core import maximality_constraints, nested_query_constraints
from repro.core.query import Query
from repro.errors import QueryAnalysisError
from repro.exec.context import TimeLimitExceeded
from repro.graph import GraphStats, erdos_renyi, graph_from_edges
from repro.graph.io import write_edge_list
from repro.obs import MetricsRegistry, observe_estimate_error
from repro.patterns import (
    plan_for,
    quasi_clique_patterns_up_to,
    triangle,
)


def _mqc_constraints(max_size=4, gamma=0.8):
    return maximality_constraints(
        quasi_clique_patterns_up_to(max_size, gamma, min_size=3),
        induced=True,
    )


class TestGraphStats:
    def test_basic_fields(self):
        g = dataset("dblp")
        stats = g.stats_summary()
        assert stats.num_vertices == g.num_vertices
        assert stats.num_edges == g.num_edges
        assert stats.avg_degree == pytest.approx(
            2 * g.num_edges / g.num_vertices
        )
        assert stats.max_degree == g.max_degree
        assert 0.0 <= stats.clustering <= 1.0
        # Histogram covers every vertex.
        assert sum(count for _, count in stats.degree_histogram) == (
            g.num_vertices
        )

    def test_cached_and_deterministic(self):
        g = dataset("mico")
        first = g.stats_summary()
        assert g.stats_summary() is first
        recomputed = GraphStats.from_graph(g)
        assert recomputed == first

    def test_label_fraction(self):
        g = dataset("mico")
        stats = g.stats_summary()
        total = sum(
            stats.label_fraction(lab)
            for lab, _ in stats.label_frequencies
        )
        assert total == pytest.approx(1.0)
        assert stats.label_fraction(10_000) == 0.0

    def test_triangle_clustering_is_exact_on_small_graph(self):
        # A triangle closes all three wedges.
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        assert g.stats_summary().clustering == pytest.approx(1.0)

    def test_pickle_reattaches_shared_stats(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        stats = g.stats_summary()
        clone = pickle.loads(pickle.dumps(g))
        assert clone._stats is None  # instance memo is not serialized
        # Same process, same content ⇒ re-attached to the same
        # DerivedCache-owned GraphStats, not recomputed.
        assert clone.stats_summary() is stats


class TestPlanEstimate:
    def test_triangle_plan_estimate_shape(self):
        stats = dataset("dblp").stats_summary()
        estimate = estimate_plan(plan_for(triangle()), stats)
        assert estimate.num_steps == 3
        assert len(estimate.steps) == 3
        assert estimate.roots == stats.num_vertices
        assert estimate.total_candidates > 0
        assert estimate.est_matches > 0
        # Later steps face more anchors, so pools shrink.
        assert estimate.steps[2].pool_size < estimate.steps[1].pool_size

    def test_labeled_pattern_on_unlabeled_graph_is_uncalibrated(self):
        from repro.patterns.pattern import Pattern

        labeled = Pattern(
            3, [(0, 1), (1, 2), (0, 2)], labels=[0, 1, 2]
        )
        stats = dataset("dblp").stats_summary()  # unlabeled
        estimate = estimate_plan(plan_for(labeled), stats)
        assert estimate.uncalibrated
        assert estimate.est_matches == 0.0


class TestCalibration:
    """Acceptance: estimates within 10x of actual candidate counts."""

    @pytest.mark.parametrize("key", ["dblp", "mico", "amazon"])
    def test_mqc_within_order_of_magnitude(self, key):
        graph = dataset(key)
        estimate = estimate_constraint_set(
            _mqc_constraints(), graph.stats_summary()
        )
        result = maximal_quasi_cliques(
            graph, gamma=0.8, max_size=4, min_size=3
        )
        actual = result.stats.extensions_attempted
        assert actual > 0
        ratio = actual / estimate.total_candidates
        assert 0.1 <= ratio <= 10.0, (
            f"{key}: estimated {estimate.total_candidates:.0f} vs "
            f"actual {actual} (ratio {ratio:.2f})"
        )

    def test_nsq_within_order_of_magnitude(self):
        graph = dataset("amazon")
        p_m, p_plus_list = paper_query_triangles()
        estimate = estimate_constraint_set(
            nested_query_constraints(p_m, p_plus_list),
            graph.stats_summary(),
        )
        result = nested_subgraph_query(graph, p_m, p_plus_list)
        actual = result.stats.extensions_attempted
        ratio = actual / estimate.total_candidates
        assert 0.1 <= ratio <= 10.0


class TestChaosWorkload:
    """Acceptance: a budget-exhausting workload is flagged CG601 by the
    static estimate *before* execution, and really does blow the budget."""

    BUDGET = 0.5

    @pytest.fixture()
    def dense_graph_file(self, tmp_path):
        graph = erdos_renyi(200, 0.2, seed=7)
        path = str(tmp_path / "dense.txt")
        write_edge_list(graph, path)
        return graph, path

    def test_estimate_flags_then_run_exhausts(
        self, dense_graph_file, capsys
    ):
        graph, path = dense_graph_file
        # 1. The static estimate rejects the workload without running it.
        exit_code = main(
            ["analyze", "--workload", "mqc", "--max-size", "5",
             "--estimate", "--graph", path,
             "--budget-seconds", str(self.BUDGET), "--format", "json"]
        )
        assert exit_code == 1
        payload = json.loads(capsys.readouterr().out)
        codes = [d["code"] for d in payload["diagnostics"]]
        assert "CG601" in codes
        assert payload["estimate"]["total_candidates"] > 0
        # 2. The real run under the same budget really is exhausted.
        with pytest.raises(TimeLimitExceeded):
            maximal_quasi_cliques(
                graph, gamma=0.8, max_size=5, min_size=3,
                time_limit=self.BUDGET,
            )

    def test_strict_admission_refuses_before_running(
        self, dense_graph_file, capsys
    ):
        _, path = dense_graph_file
        with pytest.raises(SystemExit) as excinfo:
            main(
                ["mqc", "--graph", path, "--max-size", "5",
                 "--time-limit", str(self.BUDGET),
                 "--admission", "strict"]
            )
        assert excinfo.value.code == 2
        assert "CG601" in capsys.readouterr().err


class TestCheckEstimate:
    def test_memory_budget_violation(self):
        estimate = estimate_constraint_set(
            _mqc_constraints(), dataset("dblp").stats_summary()
        )
        report = check_estimate(estimate, budget_bytes=1_000)
        assert "CG602" in report.codes()
        assert report.has_errors

    def test_shard_imbalance_warning(self):
        # amazon's powerlaw hub degree is >8x its average.
        estimate = estimate_constraint_set(
            _mqc_constraints(), dataset("amazon").stats_summary()
        )
        report = check_estimate(
            estimate, scheduler="workqueue", n_workers=4
        )
        assert "CG603" in report.codes()
        assert not report.has_errors  # warning only

    def test_no_shard_warning_for_serial(self):
        estimate = estimate_constraint_set(
            _mqc_constraints(), dataset("amazon").stats_summary()
        )
        report = check_estimate(estimate, scheduler="serial", n_workers=1)
        assert "CG603" not in report.codes()

    def test_uncalibrated_info_on_tiny_graph(self):
        tiny = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        estimate = estimate_constraint_set(
            _mqc_constraints(), tiny.stats_summary()
        )
        report = check_estimate(estimate)
        assert "CG604" in report.codes()

    def test_recommendation_always_present(self):
        estimate = estimate_constraint_set(
            _mqc_constraints(), dataset("dblp").stats_summary()
        )
        report = check_estimate(estimate)
        assert "CG605" in report.codes()
        recommended = estimate.recommended
        assert recommended.scheduler in ("serial", "workqueue", "process")
        assert recommended.adjacency == "auto"

    def test_generous_budgets_pass(self):
        estimate = estimate_constraint_set(
            _mqc_constraints(), dataset("dblp").stats_summary()
        )
        report = check_estimate(
            estimate,
            budget_seconds=3600.0,
            budget_bytes=8 * 1024**3,
        )
        assert not report.has_errors


class TestQueryAdmission:
    def test_estimate_accessor(self):
        graph = dataset("dblp")
        p_m, p_plus_list = paper_query_triangles()
        query = Query(p_m)
        for p_plus in p_plus_list:
            query = query.not_within(p_plus)
        estimate = query.estimate(graph)
        assert estimate.total_candidates > 0
        assert estimate.vtask_candidates > 0

    def test_strict_run_rejects_projected_tle(self):
        graph = erdos_renyi(200, 0.2, seed=7)
        p_m, p_plus_list = paper_query_triangles()
        query = Query(p_m).strict().time_limit(0.0001)
        for p_plus in p_plus_list:
            query = query.not_within(p_plus)
        with pytest.raises(QueryAnalysisError) as excinfo:
            query.run(graph)
        assert any(d.code == "CG601" for d in excinfo.value.diagnostics)

    def test_strict_run_admits_generous_budget(self):
        graph = dataset("dblp")
        result = (
            Query(triangle()).strict().time_limit(600).run(graph)
        )
        assert result.count > 0


class TestEstimateErrorMetric:
    def test_ratio_recorded(self):
        registry = MetricsRegistry()
        assert observe_estimate_error(registry, 100.0, 250.0) == 2.5
        snapshot = registry.snapshot()
        assert snapshot["repro_estimate_error_ratio"]["count"] == 1
        assert snapshot["repro_estimate_error_ratio"]["sum"] == 2.5

    def test_degenerate_sides_skipped(self):
        registry = MetricsRegistry()
        assert observe_estimate_error(registry, 0.0, 10.0) is None
        assert observe_estimate_error(registry, 10.0, 0.0) is None
        assert registry.snapshot() == {}


class TestQuerySpecEstimate:
    def test_only_within_adds_bridge_work(self):
        stats = dataset("dblp").stats_summary()
        p_m, p_plus_list = paper_query_triangles()
        bare = estimate_query_spec(p_m, stats=stats)
        constrained = estimate_query_spec(
            p_m, only_within=p_plus_list[:1], stats=stats
        )
        assert constrained.total_candidates > bare.total_candidates

    def test_requires_stats(self):
        with pytest.raises(ValueError):
            estimate_query_spec(triangle())
