"""Tests for the static query analyzer (repro.analysis)."""

import pytest

from repro.analysis import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    analyze_constraint_set,
    analyze_kws_workload,
    analyze_query,
    analyze_query_spec,
    check_alignment_feasibility,
    check_dependency_graph,
    lint_pattern,
    lint_pattern_text,
    selfcheck,
    verify_symmetry_conditions,
)
from repro.core import ConstraintSet, ContainmentConstraint, Query
from repro.errors import QueryAnalysisError
from repro.graph import graph_from_edges
from repro.patterns import (
    Pattern,
    clique,
    house,
    parse_pattern,
    tailed_triangle,
    triangle,
)


def codes(report_or_list):
    if isinstance(report_or_list, AnalysisReport):
        return report_or_list.codes()
    return [d.code for d in report_or_list]


class TestDiagnostics:
    def test_registry_severities(self):
        assert all(
            severity in (ERROR, WARNING, INFO)
            for _, severity, _ in CODES.values()
        )

    def test_suppress_filters_codes(self):
        report = analyze_kws_workload([0, 1], 3)
        assert "CG201" in report.codes()
        assert "CG201" not in report.suppress(["CG201"]).codes()

    def test_sorted_puts_errors_first(self):
        report = analyze_query_spec(
            triangle(), not_within=[parse_pattern("0-1, 2-3")]
        )
        ordered = report.sorted().diagnostics
        severities = [d.severity for d in ordered]
        assert severities == sorted(
            severities, key=(ERROR, WARNING, INFO).index
        )

    def test_to_dict_roundtrips_counts(self):
        report = selfcheck()
        payload = report.to_dict()
        assert payload["errors"] == len(report.errors)
        assert len(payload["diagnostics"]) == len(report)


class TestLint:
    def test_disconnected_pattern_cg001(self):
        p = Pattern(4, {(0, 1), (2, 3)})
        assert "CG001" in codes(lint_pattern(p))

    def test_parse_error_cg004(self):
        pattern, diagnostics = lint_pattern_text("0-0", name="t")
        assert pattern is None
        assert codes(diagnostics) == ["CG004"]
        assert "self loop" in diagnostics[0].message

    def test_duplicate_item_cg005(self):
        pattern, diagnostics = lint_pattern_text("0-1, 1-2, 0-1")
        assert pattern is not None
        assert "CG005" in codes(diagnostics)


class TestSatisfiability:
    def test_unsatisfiable_self_containment_cg101(self):
        # P+ is the target plus an isolated wildcard vertex: under
        # edge-induced matching every triangle match extends to it, so
        # not_within excludes everything the query could return.
        p_plus = parse_pattern("0-1, 1-2, 0-2; vertices 4")
        report = analyze_query_spec(triangle(), not_within=[p_plus])
        assert "CG101" in report.codes()
        assert report.has_errors

    def test_only_within_not_within_contradiction_cg101(self):
        report = analyze_query_spec(
            triangle(),
            not_within=[tailed_triangle()],
            only_within=[tailed_triangle()],
        )
        assert "CG101" in report.codes()

    def test_equal_size_cg102(self):
        report = analyze_query_spec(triangle(), not_within=[triangle()])
        assert "CG102" in report.codes()

    def test_unrelated_cg103(self):
        from repro.patterns import cycle

        report = analyze_query_spec(
            cycle(4), not_within=[clique(5)], induced=True
        )
        assert "CG103" in report.codes()

    def test_duplicate_constraint_cg105(self):
        report = analyze_query_spec(
            triangle(), not_within=[house(), house()]
        )
        assert "CG105" in report.codes()

    def test_clean_query_has_no_diagnostics(self):
        report = analyze_query_spec(triangle(), not_within=[house()])
        assert report.ok
        assert len(report) == 0


class TestBucketing:
    def test_all_skip_workload_cg201_cg202(self):
        # Fully-labeled keyword patterns: every size>1 cover contains
        # the single-vertex cover, so minimality rejects everything.
        labeled_edge = parse_pattern("0-1; labels 0:0 1:0")
        cs = ConstraintSet(
            [labeled_edge],
            [
                ContainmentConstraint(
                    labeled_edge,
                    Pattern(1, set(), labels=[0]),
                    induced=True,
                )
            ],
            induced=True,
        )
        report = AnalysisReport()
        from repro.analysis import check_predecessor_buckets

        report.extend(check_predecessor_buckets(cs))
        assert "CG201" in report.codes()
        assert "CG202" in report.codes()
        assert report.has_errors

    def test_kws_workload_mixes_buckets(self):
        report = analyze_kws_workload([0, 1], 3)
        assert "CG201" in report.codes()  # SKIP bucket exists
        assert "CG203" in report.codes()  # EAGER bucket exists
        assert "CG202" not in report.codes()  # but not all-SKIP
        assert report.ok


class TestDependencyGraph:
    def test_cycle_cg302(self):
        cs = ConstraintSet(
            [triangle(), tailed_triangle()],
            [
                ContainmentConstraint(triangle(), tailed_triangle()),
                ContainmentConstraint(tailed_triangle(), triangle()),
            ],
        )
        assert "CG302" in codes(check_dependency_graph(cs))

    def test_dead_intermediate_cg301(self):
        # house is mined but neither carries nor receives a constraint.
        cs = ConstraintSet(
            [triangle(), house()],
            [ContainmentConstraint(triangle(), tailed_triangle())],
        )
        assert "CG301" in codes(check_dependency_graph(cs))

    def test_degenerate_lateral_group_cg303(self):
        tailed_relabeled = Pattern(
            4, {(0, 1), (0, 2), (1, 2), (2, 3)}, name="tailed-b"
        )
        assert tailed_relabeled.canonical_key() == (
            tailed_triangle().canonical_key()
        )
        cs = ConstraintSet(
            [triangle()],
            [
                ContainmentConstraint(triangle(), tailed_triangle()),
                ContainmentConstraint(triangle(), tailed_relabeled),
            ],
        )
        assert "CG303" in codes(check_dependency_graph(cs))


class TestPlanVerification:
    def test_comparison_cycle_cg401(self):
        diagnostics = verify_symmetry_conditions(
            triangle(), [(0, 1), (1, 0)]
        )
        assert "CG401" in codes(diagnostics)

    def test_wrong_orbit_count_cg401(self):
        # A triangle needs three conditions to break S_3; one is not
        # enough (it keeps 3 of the 6 orderings, not 1).
        diagnostics = verify_symmetry_conditions(triangle(), [(0, 1)])
        assert "CG401" in codes(diagnostics)

    def test_out_of_range_vertex_cg401(self):
        diagnostics = verify_symmetry_conditions(triangle(), [(0, 7)])
        assert "CG401" in codes(diagnostics)

    def test_valid_conditions_pass(self):
        diagnostics = verify_symmetry_conditions(
            triangle(), [(0, 1), (1, 2)]
        )
        assert diagnostics == []

    def test_disconnected_containing_cg402(self):
        p_plus = Pattern(4, {(0, 1), (1, 2), (0, 2)})  # isolated vertex 3
        diagnostics = check_alignment_feasibility(
            triangle(), p_plus, induced=False
        )
        assert "CG402" in codes(diagnostics)


class TestEntryPoints:
    def test_selfcheck_library_is_error_free(self):
        report = selfcheck()
        assert report.ok, report.render_text()

    def test_analyze_constraint_set_maximality(self):
        from repro.core import maximality_constraints
        from repro.patterns import quasi_clique_patterns_up_to

        cs = maximality_constraints(
            quasi_clique_patterns_up_to(4, 0.8), induced=True
        )
        assert analyze_constraint_set(cs).ok

    def test_analyze_query_builder(self):
        query = Query(triangle()).not_within(house())
        assert analyze_query(query).ok

    def test_analyze_query_rejects_non_query(self):
        with pytest.raises(TypeError):
            analyze_query(triangle())


class TestStrictQuery:
    def test_strict_raises_on_unsatisfiable(self):
        p_plus = parse_pattern("0-1, 1-2, 0-2; vertices 4")
        with pytest.raises(QueryAnalysisError) as excinfo:
            Query(triangle()).strict().not_within(p_plus)
        assert any(
            d.code in ("CG001", "CG101") for d in excinfo.value.diagnostics
        )

    def test_strict_passes_clean_query(self):
        query = Query(triangle()).strict().not_within(house())
        assert query.analyze().ok

    def test_non_strict_defers_to_run(self):
        # Without strict() the builder accepts the pattern and the
        # failure surfaces as a plain ValueError at execution time,
        # when no RL-Path recipe can bridge to the disconnected P+.
        p_plus = parse_pattern("0-1, 1-2, 0-2; vertices 4")
        query = Query(triangle()).not_within(p_plus)
        graph = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        with pytest.raises(ValueError, match="bridges"):
            query.run(graph)


class TestOnlyWithinRuntime:
    def test_only_within_filters_matches(self):
        # K4 on {0..3} plus an isolated triangle {4,5,6}: triangles in
        # the K4 are inside a 4-clique; the isolated one is not.
        edges = [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (5, 6), (4, 6),
        ]
        graph = graph_from_edges(edges)
        unconstrained = Query(triangle()).count(graph)
        within_k4 = Query(triangle()).only_within(clique(4)).count(graph)
        assert unconstrained == 5  # 4 in the K4 + 1 isolated
        assert within_k4 == 4

    def test_only_within_conjoins(self):
        edges = [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
            (4, 5), (5, 6), (4, 6),
        ]
        graph = graph_from_edges(edges)
        count = (
            Query(triangle())
            .only_within(clique(4))
            .only_within(tailed_triangle())
            .count(graph)
        )
        # tailed triangle needs a fourth vertex off the triangle: the
        # K4 triangles have one, the isolated triangle does not.
        assert count == 4

    def test_only_within_requires_larger_pattern(self):
        with pytest.raises(ValueError):
            Query(triangle()).only_within(triangle())


class TestSchedulerFeasibility:
    def _mqc_constraints(self):
        from repro.core import maximality_constraints
        from repro.patterns import quasi_clique_patterns_up_to

        return maximality_constraints(
            quasi_clique_patterns_up_to(4, 0.7), induced=True
        )

    def test_unknown_scheduler_is_cg501(self):
        from repro.analysis import check_scheduler

        report = check_scheduler("bogus")
        assert report.has_errors
        assert report.errors[0].code == "CG501"

    def test_serial_scheduler_is_clean(self):
        from repro.analysis import check_scheduler

        report = check_scheduler(
            "serial", constraint_set=self._mqc_constraints()
        )
        assert not report.diagnostics

    def test_sharded_promotion_warns_cg502(self):
        from repro.analysis import check_scheduler

        constraint_set = self._mqc_constraints()
        codes = {
            d.code
            for d in check_scheduler(
                "process", constraint_set=constraint_set
            ).diagnostics
        }
        assert "CG502" in codes
        assert "CG503" in codes  # process workers: no shared token

    def test_workqueue_shares_the_token(self):
        from repro.analysis import check_scheduler

        codes = {
            d.code
            for d in check_scheduler(
                "workqueue", constraint_set=self._mqc_constraints()
            ).diagnostics
        }
        assert "CG502" in codes
        assert "CG503" not in codes

    def test_nsq_style_constraints_are_not_promotable(self):
        from repro.analysis import check_scheduler, promotable_constraints
        from repro.core import nested_query_constraints
        from repro.patterns import house, triangle

        constraint_set = nested_query_constraints(triangle(), [house()])
        assert promotable_constraints(constraint_set) == []
        codes = {
            d.code
            for d in check_scheduler(
                "workqueue", constraint_set=constraint_set
            ).diagnostics
        }
        assert "CG502" not in codes

    def test_single_worker_warns_cg504(self):
        from repro.analysis import check_scheduler

        codes = {
            d.code for d in check_scheduler("process", n_workers=1).diagnostics
        }
        assert "CG504" in codes

    def test_query_builder_surfaces_scheduler_diagnostics(self):
        from repro.patterns import house, triangle

        report = (
            Query(triangle())
            .not_within(house())
            .scheduler("process")
            .analyze()
        )
        codes = {d.code for d in report.diagnostics}
        assert "CG503" in codes
        assert not report.has_errors


class TestDeterministicOrdering:
    """AnalysisReport.sorted() is a pure function of the findings."""

    def _diagnostics(self):
        from repro.analysis.diagnostics import make

        return [
            make("CG105", "dup constraint", subject="b"),
            make("CG001", "disconnected", subject="z"),
            make("CG105", "dup constraint", subject="a"),
            make("CG203", "eager wildcards", subject="m"),
            make("CG001", "disconnected", subject="a"),
            make("CG105", "other message", subject="a"),
        ]

    def test_sorted_is_insertion_order_independent(self):
        import itertools

        from repro.analysis.diagnostics import AnalysisReport

        diagnostics = self._diagnostics()
        baseline = AnalysisReport(list(diagnostics)).sorted().diagnostics
        for permutation in itertools.permutations(diagnostics):
            report = AnalysisReport(list(permutation)).sorted()
            assert report.diagnostics == baseline

    def test_sort_key_covers_severity_code_and_location(self):
        from repro.analysis.diagnostics import AnalysisReport

        ordered = AnalysisReport(self._diagnostics()).sorted().diagnostics
        # Errors first, then warnings sorted by (code, subject,
        # fragment, message), then infos.
        assert [d.code for d in ordered] == [
            "CG001", "CG001", "CG105", "CG105", "CG105", "CG203",
        ]
        assert [d.subject for d in ordered[:2]] == ["a", "z"]
        assert [(d.subject, d.message) for d in ordered[2:5]] == [
            ("a", "dup constraint"),
            ("a", "other message"),
            ("b", "dup constraint"),
        ]
