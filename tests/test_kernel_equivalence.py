"""Property tests for the candidate-kernel layer (repro.graph.index).

The legacy frozenset path (``index=None``) is the oracle: every kernel
mode must produce *identical* candidate lists at every step of every
exploration, and identical match multisets end to end — under every
scheduler.  The suite sweeps 100+ seeded (graph, plan, step) cases.
"""

import pickle
import random
from collections import Counter

import pytest

from repro.apps import maximal_quasi_cliques, mine_quasi_cliques
from repro.apps.nsq import nested_subgraph_query, paper_query_triangles
from repro.graph import (
    ADJACENCY_MODES,
    Graph,
    bits_from_sorted,
    bits_to_sorted,
    erdos_renyi,
    intersect_sorted,
)
from repro.graph.index import bits_count
from repro.mining import (
    MiningEngine,
    MiningStats,
    SetOperationCache,
    TaskCache,
    compute_candidates,
    kernel_pool,
    root_candidates,
)
from repro.patterns import clique, path, plan_for, star, triangle
from repro.patterns.pattern import Pattern

from conftest import labeled_random_graph, random_graph

KERNEL_MODES = [m for m in ADJACENCY_MODES if m != "sets"]


# ----------------------------------------------------------------------
# Kernel primitives
# ----------------------------------------------------------------------


class TestBitsetPrimitives:
    @pytest.mark.parametrize("seed", range(10))
    def test_bits_round_trip(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 300)
        vertices = sorted(rng.sample(range(n), rng.randrange(0, n)))
        bits = bits_from_sorted(vertices, n)
        assert bits_to_sorted(bits) == vertices
        assert bits_count(bits) == len(vertices)

    def test_bits_empty(self):
        assert bits_from_sorted([], 10) == 0
        assert bits_to_sorted(0) == []

    @pytest.mark.parametrize("seed", range(10))
    def test_intersect_sorted_matches_set_intersection(self, seed):
        rng = random.Random(100 + seed)
        a = sorted(rng.sample(range(200), rng.randrange(0, 80)))
        b = sorted(rng.sample(range(200), rng.randrange(0, 80)))
        expected = sorted(set(a) & set(b))
        assert list(intersect_sorted(tuple(a), tuple(b))) == expected

    def test_intersect_sorted_window(self):
        # The lo/hi window restricts the *first* operand's range.
        a = (1, 3, 5, 7, 9)
        b = (3, 5, 7)
        assert list(intersect_sorted(a, b)) == [3, 5, 7]


class TestGraphIndex:
    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_adjacency_agrees_with_graph(self, mode):
        graph = random_graph(40, 0.2, seed=7)
        index = graph.kernel_index(mode)
        for v in graph.vertices():
            assert bits_to_sorted(index.neighbor_bits(v)) == sorted(
                graph.neighbors(v)
            )
            for u in graph.vertices():
                assert index.has_edge(u, v) == graph.has_edge(u, v)

    def test_label_partitions(self):
        graph = labeled_random_graph(40, 0.25, num_labels=3, seed=11)
        index = graph.kernel_index("csr")
        for v in graph.vertices():
            for lab in range(3):
                expected = sorted(
                    u for u in graph.neighbors(v) if graph.label(u) == lab
                )
                assert list(index.neighbors_with_label(v, lab)) == expected
        for lab in range(3):
            assert bits_to_sorted(index.label_bits(lab)) == sorted(
                graph.vertices_with_label(lab)
            )

    @pytest.mark.parametrize("mode", KERNEL_MODES)
    @pytest.mark.parametrize("seed", range(5))
    def test_pool_matches_naive_intersection(self, mode, seed):
        graph = labeled_random_graph(50, 0.3, num_labels=2, seed=seed)
        index = graph.kernel_index(mode)
        rng = random.Random(seed)
        stats = MiningStats()
        for _ in range(20):
            anchors = rng.sample(range(50), rng.randrange(1, 4))
            for label in (None, 0, 1):
                expected = set.intersection(
                    *(set(graph.neighbors(v)) for v in anchors)
                )
                if label is not None:
                    expected = {
                        v for v in expected if graph.label(v) == label
                    }
                pool = index.pool(anchors, label, stats)
                assert index.pool_to_sorted(pool) == sorted(expected)
                assert index.pool_size(pool) == len(expected)

    def test_refine_keeps_representation(self):
        graph = random_graph(60, 0.4, seed=3)
        stats = MiningStats()
        for mode in ("bitset", "csr"):
            index = graph.kernel_index(mode)
            pool = index.pool([0], None, stats)
            refined = index.refine(pool, [1], stats)
            assert isinstance(refined, type(pool))
            expected = sorted(
                set(graph.neighbors(0)) & set(graph.neighbors(1))
            )
            assert index.pool_to_sorted(refined) == expected

    def test_kernel_index_is_cached_per_mode(self):
        graph = random_graph(10, 0.3, seed=1)
        assert graph.kernel_index("csr") is graph.kernel_index("csr")
        assert graph.kernel_index("csr") is not graph.kernel_index("bitset")

    def test_auto_graph_level_fallback(self):
        from repro.graph import auto_selects_kernels
        from repro.mining.etask import resolve_index

        sparse = random_graph(40, 0.05, seed=2)
        dense = random_graph(40, 0.6, seed=2)
        assert not auto_selects_kernels(sparse)
        assert auto_selects_kernels(dense)
        # auto on a sparse graph IS the legacy path (no index at all),
        # so it can never be slower than sets there.
        assert resolve_index(sparse, "auto") is None
        assert resolve_index(dense, "auto") is not None
        assert resolve_index(sparse, "bitset") is not None
        assert resolve_index(dense, "sets") is None
        assert MiningEngine(sparse, adjacency="auto").index is None
        assert MiningEngine(dense, adjacency="auto").index is not None

    def test_invalid_mode_rejected(self):
        graph = random_graph(5, 0.5, seed=1)
        with pytest.raises(ValueError):
            graph.kernel_index("nope")
        with pytest.raises(ValueError):
            MiningEngine(graph, adjacency="nope")


class TestKernelPool:
    def test_shared_cache_keys_do_not_collide_with_legacy(self):
        graph = random_graph(20, 0.4, seed=5)
        index = graph.kernel_index("bitset")
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        pool = kernel_pool(index, [0, 1], None, cache, stats)
        # Legacy keys are bare frozensets; kernel keys carry label+mode.
        assert cache.lookup(frozenset({0, 1})) is None
        again = kernel_pool(index, [1, 0], None, cache, stats)
        assert again == pool

    def test_empty_pool_is_cached_not_recomputed(self):
        # Two isolated-from-each-other vertices: empty intersection.
        graph = Graph([(1,), (0,), (3,), (2,)])
        index = graph.kernel_index("csr")
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        kernel_pool(index, [0, 2], None, cache, stats)
        before = stats.cache_hits
        kernel_pool(index, [0, 2], None, cache, stats)
        assert stats.cache_hits == before + 1


# ----------------------------------------------------------------------
# Plan-level reuse table
# ----------------------------------------------------------------------


class TestStepReuse:
    def _check_table(self, pattern: Pattern, induced: bool = False):
        plan = plan_for(pattern, induced=induced)
        table = plan.step_reuse()
        assert len(table) == plan.num_steps
        assert table[0] is None
        for step in range(1, plan.num_steps):
            reuse = table[step]
            if reuse is None:
                continue
            source, new_positions = reuse
            assert 1 <= source < step
            source_anchors = set(plan.backward_neighbors[source])
            step_anchors = set(plan.backward_neighbors[step])
            assert source_anchors and source_anchors <= step_anchors
            assert set(new_positions) == step_anchors - source_anchors
            source_label = plan.labels_at[source]
            assert source_label is None or (
                source_label == plan.labels_at[step]
            )

    @pytest.mark.parametrize(
        "pattern",
        [triangle(), clique(4), clique(5), path(3), star(4)],
        ids=lambda p: p.name or "pattern",
    )
    def test_reuse_table_is_sound(self, pattern):
        self._check_table(pattern)
        self._check_table(pattern, induced=True)

    def test_clique_reuses_previous_step(self):
        # Step k of a clique anchors on all earlier positions, so it
        # must refine step k-1's pool instead of recomputing.
        plan = plan_for(clique(5))
        table = plan.step_reuse()
        for step in range(2, plan.num_steps):
            assert table[step] is not None
            source, new_positions = table[step]
            assert source == step - 1
            assert len(new_positions) == 1


# ----------------------------------------------------------------------
# Candidate-list equivalence: kernels vs the frozenset oracle
# ----------------------------------------------------------------------


def _assert_candidates_equivalent(
    graph: Graph,
    pattern: Pattern,
    induced: bool,
    apply_symmetry: bool,
) -> int:
    """Walk the full exploration tree comparing every kernel mode
    against the legacy path at every step.  Returns the number of
    (graph, plan, step) comparisons performed."""
    plan = plan_for(pattern, induced=induced)
    indexes = {mode: graph.kernel_index(mode) for mode in KERNEL_MODES}
    stats = MiningStats()
    oracle_cache = SetOperationCache(stats=stats)
    kernel_cache = SetOperationCache(stats=stats)
    comparisons = 0

    def descend(bound, task_caches):
        nonlocal comparisons
        step = len(bound)
        if step == plan.num_steps:
            return
        expected = compute_candidates(
            graph, plan, step, bound, oracle_cache, stats,
            apply_symmetry=apply_symmetry,
        )
        for mode, index in indexes.items():
            got = compute_candidates(
                graph, plan, step, bound, kernel_cache, stats,
                apply_symmetry=apply_symmetry,
                index=index, task_cache=task_caches[mode],
            )
            assert got == expected, (
                f"mode={mode} step={step} bound={bound}: "
                f"{got} != {expected}"
            )
            comparisons += 1
        for v in expected:
            descend(bound + [v], task_caches)

    for root in root_candidates(graph, plan):
        # Fresh per-task caches per root, matching real ETasks.
        descend(
            [root],
            {mode: TaskCache(plan.num_steps) for mode in KERNEL_MODES},
        )
    return comparisons


PATTERNS = [triangle(), clique(4), path(3), star(3)]


class TestCandidateEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("induced", [False, True])
    def test_unlabeled_sweep(self, seed, induced):
        graph = random_graph(18 + 3 * seed, 0.3, seed=seed)
        total = 0
        for pattern in PATTERNS:
            total += _assert_candidates_equivalent(
                graph, pattern, induced, apply_symmetry=True
            )
        assert total >= 100  # the issue's case floor, per sweep

    @pytest.mark.parametrize("seed", range(4))
    def test_labeled_sweep(self, seed):
        graph = labeled_random_graph(20, 0.35, num_labels=2, seed=seed)
        labeled_triangle = Pattern(
            3, [(0, 1), (1, 2), (0, 2)], labels=[0, 1, seed % 2]
        )
        labeled_path = Pattern(3, [(0, 1), (1, 2)], labels=[1, 0, 1])
        total = 0
        for pattern in (labeled_triangle, labeled_path, clique(4)):
            total += _assert_candidates_equivalent(
                graph, pattern, induced=False, apply_symmetry=True
            )
        assert total > 0

    @pytest.mark.parametrize("seed", range(2))
    def test_without_symmetry_breaking(self, seed):
        # VTasks drop symmetry bounds; kernels must agree there too.
        graph = random_graph(16, 0.35, seed=40 + seed)
        for pattern in (triangle(), clique(4)):
            _assert_candidates_equivalent(
                graph, pattern, induced=False, apply_symmetry=False
            )

    def test_dense_graph_exercises_bitset_seed(self):
        # Dense => auto picks the bitset representation for most pools.
        graph = random_graph(30, 0.7, seed=9)
        stats = MiningStats()
        pool = graph.kernel_index("auto").pool([0, 1], None, stats)
        assert isinstance(pool, int)  # bitset representation chosen
        assert stats.bitset_intersections > 0
        _assert_candidates_equivalent(
            graph, clique(4), induced=False, apply_symmetry=True
        )

    def test_incremental_extensions_fire_and_stay_correct(self):
        graph = random_graph(40, 0.5, seed=21)
        plan = plan_for(clique(5))
        index = graph.kernel_index("bitset")
        stats = MiningStats()
        cache = SetOperationCache(stats=stats, enabled=False)
        task_cache = TaskCache(plan.num_steps)
        oracle_stats = MiningStats()
        oracle_cache = SetOperationCache(stats=oracle_stats)

        def descend(bound):
            step = len(bound)
            if step == plan.num_steps:
                return
            expected = compute_candidates(
                graph, plan, step, bound, oracle_cache, oracle_stats
            )
            got = compute_candidates(
                graph, plan, step, bound, cache, stats,
                index=index, task_cache=task_cache,
            )
            assert got == expected
            for v in expected:
                descend(bound + [v])

        for root in root_candidates(graph, plan)[:10]:
            descend([root])
        # With the shared cache disabled, deep clique steps must have
        # gone through the incremental-refinement tier.
        assert stats.incremental_extensions > 0


# ----------------------------------------------------------------------
# End-to-end equivalence: engines, apps, schedulers
# ----------------------------------------------------------------------


def _match_multiset(graph, pattern, mode, induced=False):
    engine = MiningEngine(graph, induced=induced, adjacency=mode)
    return Counter(
        m.assignment for m in engine.stream(pattern)
    )


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("induced", [False, True])
    def test_match_multisets_identical_across_modes(self, induced):
        graph = labeled_random_graph(35, 0.25, num_labels=2, seed=13)
        for pattern in (triangle(), clique(4), path(3)):
            baseline = _match_multiset(graph, pattern, "sets", induced)
            for mode in KERNEL_MODES:
                assert (
                    _match_multiset(graph, pattern, mode, induced)
                    == baseline
                ), (pattern, mode)

    def test_mqc_identical_across_modes(self):
        graph = random_graph(30, 0.35, seed=17)
        baseline = maximal_quasi_cliques(
            graph, 0.8, 5, adjacency="sets"
        ).all_sets()
        assert baseline
        for mode in KERNEL_MODES:
            assert (
                maximal_quasi_cliques(
                    graph, 0.8, 5, adjacency=mode
                ).all_sets()
                == baseline
            ), mode

    def test_quasicliques_identical_across_modes(self):
        graph = random_graph(28, 0.4, seed=19)
        baseline = mine_quasi_cliques(
            graph, 0.7, 5, adjacency="sets"
        ).all_sets()
        for mode in KERNEL_MODES:
            assert (
                mine_quasi_cliques(graph, 0.7, 5, adjacency=mode).all_sets()
                == baseline
            ), mode

    def test_nsq_identical_across_modes(self):
        graph = random_graph(25, 0.35, seed=23)
        p_m, p_plus = paper_query_triangles()
        baseline = nested_subgraph_query(
            graph, p_m, p_plus, adjacency="sets"
        ).assignments()
        for mode in KERNEL_MODES:
            assert (
                nested_subgraph_query(
                    graph, p_m, p_plus, adjacency=mode
                ).assignments()
                == baseline
            ), mode

    @pytest.mark.parametrize("scheduler", ["serial", "process", "workqueue"])
    def test_mqc_identical_across_schedulers(self, scheduler):
        # Fig 13/14 workload shape: MQC with promotion+lateral active.
        graph = random_graph(24, 0.4, seed=29)
        baseline = maximal_quasi_cliques(
            graph, 0.7, 5, adjacency="sets"
        ).all_sets()
        for mode in ("auto", "bitset"):
            result = maximal_quasi_cliques(
                graph, 0.7, 5,
                scheduler=scheduler, n_workers=2, adjacency=mode,
            )
            assert result.all_sets() == baseline, (scheduler, mode)


# ----------------------------------------------------------------------
# Satellite behaviors: LRU cache, lazy/cached graph properties, pickling
# ----------------------------------------------------------------------


class TestLRUCache:
    def test_lookup_refreshes_recency(self):
        cache = SetOperationCache(max_entries=2)
        cache.store(frozenset({1}), frozenset({10}))
        cache.store(frozenset({2}), frozenset({20}))
        # Touch {1}: now {2} is least recently used.
        assert cache.lookup(frozenset({1})) is not None
        cache.store(frozenset({3}), frozenset({30}))
        assert cache.lookup(frozenset({2})) is None
        assert cache.lookup(frozenset({1})) is not None
        assert cache.lookup(frozenset({3})) is not None


class TestGraphCaching:
    def test_neighbor_set_is_lazy_and_cached(self):
        graph = random_graph(20, 0.3, seed=31)
        assert graph._adj_sets is None  # nothing attached before use
        first = graph.neighbor_set(3)
        assert 3 in graph._adj_sets
        assert graph.neighbor_set(3) is first
        assert first == frozenset(graph.neighbors(3))
        # Same-content graphs attach to the same cache-owned sets.
        twin = Graph([graph.neighbors(v) for v in graph.vertices()])
        assert twin.neighbor_set(3) is first

    def test_max_degree_cached(self):
        graph = random_graph(20, 0.3, seed=33)
        expected = max(graph.degree(v) for v in graph.vertices())
        assert graph.max_degree == expected
        assert graph._max_degree == expected

    def test_label_frequencies_cached_and_copied(self):
        graph = labeled_random_graph(20, 0.3, num_labels=3, seed=35)
        freq = graph.label_frequencies()
        assert sum(freq.values()) == graph.num_vertices
        freq[0] = -1  # mutating the copy must not poison the cache
        assert graph.label_frequencies()[0] != -1

    def test_pickle_round_trip_reattaches_derived_state(self):
        graph = labeled_random_graph(15, 0.4, num_labels=2, seed=37)
        adj = graph.neighbor_set(0)
        idx = graph.kernel_index("bitset")
        _ = graph.max_degree
        clone = pickle.loads(pickle.dumps(graph))
        # The payload carries no derived handles...
        assert clone._adj_sets is None
        assert clone._indexes is None
        assert clone._max_degree is None
        assert clone.num_edges == graph.num_edges
        assert clone.labels == graph.labels
        assert clone.fingerprint == graph.fingerprint
        for v in graph.vertices():
            assert clone.neighbors(v) == graph.neighbors(v)
        # ...and on first use, the clone re-attaches to the same
        # cache-owned artifacts instead of rebuilding (same process ⇒
        # same derived cache ⇒ same objects).
        assert clone.neighbor_set(0) is adj
        assert clone.kernel_index("bitset") is idx
        assert _match_multiset(clone, triangle(), "auto") == _match_multiset(
            graph, triangle(), "sets"
        )

    def test_pickled_engine_carries_no_index_payload(self):
        from repro.apps.mqc import build_mqc_engine

        graph = erdos_renyi(20, 0.3, seed=39)
        engine = build_mqc_engine(graph, 0.8, 4, adjacency="bitset")
        idx = graph.kernel_index("bitset")  # populate, then pickle
        payload = pickle.dumps(engine)
        revived = pickle.loads(payload)
        assert revived.adjacency == "bitset"
        assert revived.graph._indexes is None  # nothing shipped
        # In-process revival shares the already-built index.
        assert revived.graph.kernel_index("bitset") is idx


# ----------------------------------------------------------------------
# Tier-2 batch kernels: one-pass sibling intersections
# ----------------------------------------------------------------------


class TestBatchKernels:
    """``batch_pool``/``batch_extend`` vs per-pool oracle, both with
    and without numpy (the fallback is bit-identical by contract)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_pool_matches_individual_pools(self, seed):
        graph = labeled_random_graph(40, 0.4, num_labels=2, seed=seed)
        index = graph.kernel_index("vector")
        stats = MiningStats()
        rng = random.Random(seed)
        batch = [
            rng.sample(range(40), rng.randrange(1, 4)) for _ in range(8)
        ]
        for label in (None, 0, 1):
            pools = index.batch_pool(batch, label, stats)
            assert len(pools) == len(batch)
            for anchors, pool in zip(batch, pools):
                expected = set.intersection(
                    *(set(graph.neighbors(v)) for v in anchors)
                )
                if label is not None:
                    expected = {
                        v for v in expected if graph.label(v) == label
                    }
                assert index.pool_to_sorted(pool) == sorted(expected)

    @pytest.mark.parametrize("seed", range(3))
    def test_batch_extend_matches_per_child_pools(self, seed):
        graph = random_graph(35, 0.4, seed=60 + seed)
        index = graph.kernel_index("vector")
        stats = MiningStats()
        base = index.neighbor_bits(0) & index.neighbor_bits(1)
        candidates = bits_to_sorted(base)
        pools = index.batch_extend(base, candidates, None, stats)
        assert len(pools) == len(candidates)
        for c, pool in zip(candidates, pools):
            expected = bits_to_sorted(base & index.neighbor_bits(c))
            assert index.pool_to_sorted(pool) == expected

    def test_batch_stats_counters_move(self):
        graph = random_graph(30, 0.5, seed=71)
        index = graph.kernel_index("vector")
        stats = MiningStats()
        index.batch_pool([[0, 1], [2, 3], [4]], None, stats)
        assert stats.batch_intersections == 1
        assert stats.set_intersections >= 3


# ----------------------------------------------------------------------
# Auxiliary (pruned-adjacency) graphs: soundness and equivalence
# ----------------------------------------------------------------------


def _core_periphery(seed=23, core_n=20, total_n=60):
    """A dense core plus degree-2 periphery: the regime auxiliary
    pruning targets (the periphery can host no clique-like match)."""
    rng = random.Random(seed)
    core = erdos_renyi(core_n, 0.6, seed=seed)
    adjacency = [list(core.neighbors(v)) for v in core.vertices()]
    adjacency.extend([] for _ in range(total_n - core_n))
    for v in range(core_n, total_n):
        for u in rng.sample(range(core_n), 2):
            adjacency[v].append(u)
            adjacency[u].append(v)
    return Graph(adjacency, name=f"aux-test-{seed}")


class TestAuxiliaryGraphs:
    def test_pruning_never_drops_a_match_vertex(self):
        from repro.graph.aux import auxiliary_graph

        graph = _core_periphery()
        pattern = clique(4)
        aux = auxiliary_graph(graph, pattern)
        assert aux.summary.prune_ratio > 0  # the test is not vacuous
        used = {
            v
            for assignment in _match_multiset(graph, pattern, "sets")
            for v in assignment
        }
        assert used <= set(aux.allowed)

    def test_aux_pool_is_full_pool_restricted_to_survivors(self):
        from repro.graph.aux import auxiliary_graph

        graph = _core_periphery(seed=31)
        aux = auxiliary_graph(graph, clique(4))
        full = graph.kernel_index("bitset")
        pruned = aux.index("bitset")
        allowed = set(aux.allowed)
        stats = MiningStats()
        rng = random.Random(7)
        for _ in range(20):
            anchors = rng.sample(aux.allowed, 2)
            full_pool = set(
                full.pool_to_sorted(full.pool(anchors, None, stats))
            )
            aux_pool = set(
                pruned.pool_to_sorted(pruned.pool(anchors, None, stats))
            )
            assert aux_pool == full_pool & allowed

    def test_aux_index_cache_key_never_collides_with_full(self):
        from repro.graph.aux import auxiliary_graph

        graph = _core_periphery(seed=37)
        aux = auxiliary_graph(graph, clique(4))
        for mode in ("bitset", "csr"):
            assert graph.kernel_index(mode).cache_key == mode
            assert aux.index(mode).cache_key.startswith(f"{mode}#aux")

    def test_artifact_cached_per_signature(self):
        from repro.graph.aux import auxiliary_graph, requirement_signature

        graph = _core_periphery(seed=41)
        first = auxiliary_graph(graph, clique(4))
        assert auxiliary_graph(graph, clique(4)) is first
        # A different degree requirement is a different artifact.
        assert requirement_signature(triangle()) != requirement_signature(
            clique(4)
        )
        assert auxiliary_graph(graph, triangle()) is not first

    def test_root_filtering_matches_allowed_set(self):
        from repro.graph.aux import auxiliary_graph

        graph = _core_periphery(seed=43)
        aux = auxiliary_graph(graph, clique(4))
        roots = list(graph.vertices())
        assert aux.filter_roots(roots) == sorted(aux.allowed)

    @pytest.mark.parametrize("mode", ["sets", "bitset", "auto"])
    @pytest.mark.parametrize("seed", range(3))
    def test_mqc_identical_with_aux(self, mode, seed):
        graph = _core_periphery(seed=80 + seed)
        baseline = maximal_quasi_cliques(
            graph, 0.75, 4, adjacency=mode
        ).all_sets()
        assert baseline
        with_aux = maximal_quasi_cliques(
            graph, 0.75, 4, adjacency=mode, enable_aux=True
        ).all_sets()
        assert with_aux == baseline, (mode, seed)

    def test_nsq_identical_with_aux(self):
        graph = _core_periphery(seed=91)
        p_m, p_plus = paper_query_triangles()
        baseline = nested_subgraph_query(
            graph, p_m, p_plus, adjacency="bitset"
        ).assignments()
        with_aux = nested_subgraph_query(
            graph, p_m, p_plus, adjacency="bitset", enable_aux=True
        ).assignments()
        assert with_aux == baseline
