"""Tests for isomorphism, embeddings, and connected subpatterns."""

from hypothesis import given, settings

from repro.patterns import (
    Pattern,
    are_isomorphic,
    clique,
    connected_subpatterns,
    contains_subpattern,
    cycle,
    diamond,
    find_isomorphism,
    house,
    path,
    subpattern_embeddings,
    triangle,
)

from conftest import connected_pattern_strategy


class TestIsomorphism:
    def test_identical(self):
        assert are_isomorphic(triangle(), triangle())

    def test_relabeled(self):
        a = Pattern(4, [(0, 1), (1, 2), (2, 3)])
        b = Pattern(4, [(3, 2), (2, 0), (0, 1)])
        assert are_isomorphic(a, b)

    def test_different_edge_counts(self):
        assert not are_isomorphic(triangle(), path(2))

    def test_same_degree_sequence_different_structure(self):
        # C6 vs two triangles' union is disconnected; use C6 vs prism-ish:
        c6 = cycle(6)
        two_triangles = Pattern(
            6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
        )
        assert not are_isomorphic(c6, two_triangles)

    def test_labels_must_match(self):
        a = triangle().with_labels([1, 2, 3])
        b = triangle().with_labels([1, 2, 4])
        assert not are_isomorphic(a, b)

    def test_find_isomorphism_is_valid_mapping(self):
        a = diamond()
        b = a.relabel({0: 3, 1: 2, 2: 1, 3: 0})
        mapping = find_isomorphism(a, b)
        assert mapping is not None
        for u, v in a.edges:
            assert b.has_edge(mapping[u], mapping[v])

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=40, deadline=None)
    def test_isomorphic_to_random_relabeling(self, p):
        import random

        perm = list(range(p.num_vertices))
        random.Random(1).shuffle(perm)
        q = p.relabel(dict(enumerate(perm)))
        assert are_isomorphic(p, q)


class TestEmbeddings:
    def test_triangle_in_house(self):
        assert contains_subpattern(triangle(), house())

    def test_square_not_in_triangle(self):
        assert not contains_subpattern(cycle(4), triangle())

    def test_embedding_count_triangle_in_k4(self):
        embeddings = list(subpattern_embeddings(triangle(), clique(4)))
        # 4 vertex subsets x 3! automorphic placements
        assert len(embeddings) == 24

    def test_induced_vs_non_induced(self):
        # path-2 embeds in a triangle non-induced, never induced.
        assert contains_subpattern(path(2), triangle(), induced=False)
        assert not contains_subpattern(path(2), triangle(), induced=True)

    def test_embeddings_are_injective_homomorphisms(self):
        for emb in subpattern_embeddings(path(2), house()):
            assert len(set(emb.values())) == 3
            for u, v in path(2).edges:
                assert house().has_edge(emb[u], emb[v])

    def test_labels_respected(self):
        small = Pattern(2, [(0, 1)], labels=[1, None])
        big = Pattern(3, [(0, 1), (1, 2)], labels=[1, 2, 1])
        embeddings = list(subpattern_embeddings(small, big))
        assert all(big.label(emb[0]) == 1 for emb in embeddings)

    def test_too_large_small_pattern(self):
        assert list(subpattern_embeddings(clique(4), triangle())) == []


class TestConnectedSubpatterns:
    def test_triangle(self):
        subsets = connected_subpatterns(triangle())
        # 3 singletons + 3 edges + 1 whole
        assert len(subsets) == 7

    def test_path(self):
        subsets = connected_subpatterns(path(2))
        # {0},{1},{2},{0,1},{1,2},{0,1,2} — {0,2} is disconnected
        assert len(subsets) == 6
        assert [0, 2] not in subsets

    def test_size_bounds(self):
        subsets = connected_subpatterns(house(), min_size=2, max_size=3)
        assert all(2 <= len(s) <= 3 for s in subsets)

    def test_no_duplicates(self):
        subsets = connected_subpatterns(house())
        assert len(subsets) == len({tuple(s) for s in subsets})

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force(self, p):
        import itertools

        expected = set()
        for size in range(1, p.num_vertices + 1):
            for combo in itertools.combinations(range(p.num_vertices), size):
                sub = p.subpattern(list(combo))
                if sub.is_connected():
                    expected.add(combo)
        got = {tuple(s) for s in connected_subpatterns(p)}
        assert got == expected
