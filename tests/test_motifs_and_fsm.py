"""Tests for motif counting and frequent subgraph mining."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    frequent_subgraphs,
    motif_counts,
    motif_counts_esu,
    motif_significance,
)
from repro.graph import erdos_renyi, graph_from_edges, triangle_count

from conftest import graph_strategy, labeled_random_graph


class TestMotifs:
    def test_size3_triangle_count(self):
        g = erdos_renyi(20, 0.3, seed=1)
        counts = motif_counts(g, 3)
        # s3.1 is the triangle (densest size-3 structure)
        assert counts["s3.1"] == triangle_count(g)

    def test_two_methods_agree(self):
        g = erdos_renyi(15, 0.35, seed=2)
        for size in (3, 4):
            assert motif_counts(g, size) == motif_counts_esu(g, size)

    @given(graph_strategy(max_vertices=10), st.sampled_from([3, 4]))
    @settings(max_examples=20, deadline=None)
    def test_property_methods_agree(self, g, size):
        assert motif_counts(g, size) == motif_counts_esu(g, size)

    def test_total_equals_connected_sets(self):
        from repro.baselines.naive import connected_vertex_sets

        g = erdos_renyi(12, 0.4, seed=3)
        counts = motif_counts(g, 4)
        assert sum(counts.values()) == len(connected_vertex_sets(g, 4, 4))

    def test_significance(self):
        g = erdos_renyi(14, 0.5, seed=4)
        reference = motif_counts(erdos_renyi(14, 0.5, seed=5), 3)
        ratios = motif_significance(g, 3, reference)
        assert set(ratios) == set(reference)
        assert all(r >= 0 for r in ratios.values())

    def test_significance_zero_reference(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        ratios = motif_significance(g, 3, {"s3.0": 0, "s3.1": 0})
        assert ratios["s3.1"] == float("inf")
        assert ratios["s3.0"] == 1.0  # absent in both


class TestFSM:
    def _two_label_triangles(self):
        """Three triangles with labels (0,0,1); one with (1,1,1)."""
        from repro.graph import Graph, GraphBuilder

        builder = GraphBuilder()
        edges = []
        for base in range(0, 9, 3):
            edges += [
                (base, base + 1), (base + 1, base + 2), (base, base + 2)
            ]
        edges += [(9, 10), (10, 11), (9, 11)]
        edges += [(2, 3), (5, 6)]  # connect components lightly
        builder.add_edges(edges)
        g = builder.build()
        labels = [0, 0, 1] * 3 + [1, 1, 1]
        return Graph(
            [g.neighbors(v) for v in g.vertices()], labels=labels
        )

    def test_finds_frequent_triangle(self):
        g = self._two_label_triangles()
        frequent = frequent_subgraphs(g, min_support=3, max_size=3)
        triangle_hits = [
            fp
            for fp in frequent
            if fp.pattern.num_vertices == 3 and fp.pattern.is_clique()
            and sorted(fp.pattern.labels) == [0, 0, 1]
        ]
        assert triangle_hits
        assert triangle_hits[0].match_count >= 3

    def test_support_is_anti_monotone_in_threshold(self):
        g = labeled_random_graph(16, 0.3, num_labels=3, seed=6)
        low = frequent_subgraphs(g, min_support=2, max_size=3)
        high = frequent_subgraphs(g, min_support=4, max_size=3)
        low_keys = {fp.pattern.canonical_key() for fp in low}
        high_keys = {fp.pattern.canonical_key() for fp in high}
        assert high_keys <= low_keys

    def test_mni_support_definition(self):
        # single edge with labels 0-1 appearing twice sharing vertex 0:
        # MNI support of edge(0,1) is min(|{0}|, |{1,2}|) = 1... build:
        from repro.graph import Graph

        g = Graph([(1, 2), (0,), (0,)], labels=[0, 1, 1])
        frequent = frequent_subgraphs(g, min_support=2, max_size=2)
        # two matches but the label-0 position has one image -> support 1
        assert all(
            not (
                fp.pattern.num_vertices == 2
                and sorted(
                    lab for lab in fp.pattern.labels
                ) == [0, 1]
            )
            for fp in frequent
        )

    def test_unlabeled_rejected(self):
        with pytest.raises(ValueError):
            frequent_subgraphs(erdos_renyi(8, 0.4, seed=0), 2, 3)

    def test_invalid_support(self):
        g = labeled_random_graph(8, 0.4, num_labels=2, seed=1)
        with pytest.raises(ValueError):
            frequent_subgraphs(g, 0, 3)

    def test_results_sorted(self):
        g = labeled_random_graph(14, 0.35, num_labels=2, seed=7)
        frequent = frequent_subgraphs(g, min_support=2, max_size=3)
        sizes = [fp.pattern.num_vertices for fp in frequent]
        assert sizes == sorted(sizes)
