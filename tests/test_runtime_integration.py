"""Integration tests: ContigraEngine vs brute-force oracles vs baselines.

The crown-jewel invariant: for every workload and every combination of
runtime toggles, Contigra, the post-hoc baseline, the TThinker
simulation, and the naive oracle all report exactly the same result
sets — the optimizations change work, never answers.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import maximal_quasi_cliques
from repro.apps.nsq import (
    nested_subgraph_query,
    paper_query_tailed_triangles,
    paper_query_triangles,
)
from repro.baselines import posthoc_mqc, posthoc_nsq, tthinker_mqc
from repro.baselines.naive import (
    maximal_quasi_cliques as oracle_mqc,
    nested_query_matches,
)
from repro.core import ContigraEngine, maximality_constraints
from repro.errors import TimeLimitExceeded
from repro.graph import erdos_renyi
from repro.patterns import quasi_clique_patterns_up_to


class TestMQCAgainstOracle:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("gamma", [0.6, 0.8])
    def test_exact_agreement(self, seed, gamma):
        g = erdos_renyi(16, 0.42, seed=seed)
        want = oracle_mqc(g, gamma, 3, 5)
        got = maximal_quasi_cliques(g, gamma, 5).all_sets()
        assert got == want

    @pytest.mark.parametrize(
        "toggles",
        [
            {"enable_fusion": False},
            {"enable_promotion": False},
            {"enable_lateral": False},
            {"rl_strategy": "sparse-first"},
            {"rl_strategy": "dense-first"},
            {"rl_strategy": "anti-heuristic"},
            {
                "enable_fusion": False,
                "enable_promotion": False,
                "enable_lateral": False,
            },
        ],
    )
    def test_toggles_never_change_results(self, toggles):
        g = erdos_renyi(15, 0.45, seed=11)
        want = oracle_mqc(g, 0.7, 3, 5)
        got = maximal_quasi_cliques(g, 0.7, 5, **toggles).all_sets()
        assert got == want

    def test_three_systems_agree(self):
        g = erdos_renyi(16, 0.4, seed=3)
        gamma, max_size = 0.7, 5
        contigra = maximal_quasi_cliques(g, gamma, max_size).all_sets()
        peregrine = posthoc_mqc(g, gamma, max_size).valid
        tthinker = tthinker_mqc(g, gamma, max_size).maximal
        assert contigra == peregrine == tthinker

    @given(st.integers(0, 10_000), st.sampled_from([0.6, 0.7, 0.8]))
    @settings(max_examples=15, deadline=None)
    def test_property_agreement(self, seed, gamma):
        g = erdos_renyi(13, 0.45, seed=seed)
        assert (
            maximal_quasi_cliques(g, gamma, 5).all_sets()
            == oracle_mqc(g, gamma, 3, 5)
        )

    def test_by_size_partition(self):
        g = erdos_renyi(16, 0.45, seed=4)
        result = maximal_quasi_cliques(g, 0.7, 5)
        for size, group in result.by_size.items():
            assert all(len(s) == size for s in group)
        assert result.count == len(result.all_sets())


class TestNSQAgainstOracle:
    @pytest.mark.parametrize("seed", range(4))
    def test_paper_query_one(self, seed):
        g = erdos_renyi(16, 0.2, seed=seed)
        p_m, p_plus = paper_query_triangles()
        got = set(nested_subgraph_query(g, p_m, p_plus).assignments())
        want = nested_query_matches(g, p_m, p_plus)
        assert got == want

    @pytest.mark.parametrize("seed", range(4))
    def test_paper_query_two(self, seed):
        g = erdos_renyi(16, 0.18, seed=100 + seed)
        p_m, p_plus = paper_query_tailed_triangles()
        got = set(nested_subgraph_query(g, p_m, p_plus).assignments())
        want = nested_query_matches(g, p_m, p_plus)
        assert got == want

    def test_baseline_agrees(self):
        g = erdos_renyi(15, 0.2, seed=9)
        p_m, p_plus = paper_query_triangles()
        ours = set(nested_subgraph_query(g, p_m, p_plus).assignments())
        baseline = posthoc_nsq(g, p_m, p_plus).assignments
        assert ours == baseline


class TestRuntimeMechanics:
    def _engine(self, seed=5, gamma=0.7, **kw):
        g = erdos_renyi(16, 0.45, seed=seed)
        cs = maximality_constraints(
            quasi_clique_patterns_up_to(5, gamma), induced=True
        )
        return ContigraEngine(g, cs, **kw)

    def test_predecessor_constraints_rejected(self):
        from repro.core import ConstraintSet, ContainmentConstraint
        from repro.patterns import house, triangle

        g = erdos_renyi(10, 0.3, seed=0)
        cs = ConstraintSet(
            [house()], [ContainmentConstraint(house(), triangle())]
        )
        with pytest.raises(ValueError, match="predecessor"):
            ContigraEngine(g, cs)

    def test_time_limit_raises(self):
        g = erdos_renyi(60, 0.4, seed=5)
        cs = maximality_constraints(
            quasi_clique_patterns_up_to(6, 0.6), induced=True
        )
        engine = ContigraEngine(g, cs, time_limit=0.01)
        with pytest.raises(TimeLimitExceeded):
            engine.run()

    def test_promotion_raises_cache_hit_rate(self):
        with_promo = self._engine(enable_promotion=True)
        without = self._engine(enable_promotion=False)
        r1 = with_promo.run()
        r2 = without.run()
        assert set(
            frozenset(a) for _, a in r1.valid
        ) == set(frozenset(a) for _, a in r2.valid)
        assert r1.stats.promotions > 0
        assert r2.stats.promotions == 0
        assert r1.stats.cache_hit_rate >= r2.stats.cache_hit_rate

    def test_lateral_cancellation_counts(self):
        engine = self._engine(enable_lateral=True)
        result = engine.run()
        assert result.stats.vtasks_canceled_lateral > 0
        engine_off = self._engine(enable_lateral=False)
        result_off = engine_off.run()
        assert result_off.stats.vtasks_canceled_lateral == 0
        assert (
            result_off.stats.vtasks_started > result.stats.vtasks_started
        )

    def test_etask_cancellations_from_promotion(self):
        result = self._engine(enable_promotion=True).run()
        assert result.stats.etasks_canceled == result.stats.promotions

    def test_result_reporting(self):
        result = self._engine().run()
        assert result.count == len(result.valid)
        assert len(result.vertex_sets()) == result.count
        by_pattern = result.by_pattern()
        assert sum(by_pattern.values()) == result.count
        assert result.elapsed > 0
