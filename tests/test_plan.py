"""Tests for exploration plans and matching orders."""

import pytest
from hypothesis import given, settings

from repro.patterns import (
    ExplorationPlan,
    Pattern,
    choose_matching_order,
    clique,
    house,
    path,
    plan_for,
    tailed_triangle,
    triangle,
)

from conftest import connected_pattern_strategy


class TestMatchingOrder:
    def test_order_is_permutation(self):
        order = choose_matching_order(house())
        assert sorted(order) == list(range(5))

    def test_order_is_connected(self):
        p = path(4)
        order = choose_matching_order(p)
        for i in range(1, len(order)):
            assert any(p.has_edge(order[i], order[j]) for j in range(i))

    def test_starts_at_max_degree(self):
        p = tailed_triangle()  # vertex 2 has degree 3
        assert choose_matching_order(p)[0] == 2

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            choose_matching_order(Pattern(3, [(0, 1)]))

    @given(connected_pattern_strategy(max_vertices=6))
    @settings(max_examples=50, deadline=None)
    def test_connected_order_property(self, p):
        order = choose_matching_order(p)
        assert sorted(order) == list(range(p.num_vertices))
        for i in range(1, len(order)):
            assert any(p.has_edge(order[i], order[j]) for j in range(i))


class TestPlan:
    def test_backward_neighbors(self):
        plan = ExplorationPlan(triangle(), (0, 1, 2), induced=False)
        assert plan.backward_neighbors == ((), (0,), (0, 1))

    def test_backward_nonneighbors_only_when_induced(self):
        p = path(2)
        not_induced = ExplorationPlan(p, (1, 0, 2), induced=False)
        induced = ExplorationPlan(p, (1, 0, 2), induced=True)
        assert all(not nn for nn in not_induced.backward_nonneighbors)
        assert induced.backward_nonneighbors[2] == (1,)

    def test_rejects_disconnected_order(self):
        with pytest.raises(ValueError):
            ExplorationPlan(path(2), (0, 2, 1), induced=False)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            ExplorationPlan(triangle(), (0, 1, 1), induced=False)

    def test_labels_follow_order(self):
        p = path(2).with_labels([7, 8, 9])
        plan = ExplorationPlan(p, (1, 0, 2), induced=False)
        assert plan.labels_at == (8, 7, 9)

    def test_prefix_pattern(self):
        plan = plan_for(clique(4))
        prefix = plan.prefix_pattern(3)
        assert prefix.num_vertices == 3
        assert prefix.is_clique()

    def test_plan_for_memoized(self):
        assert plan_for(triangle()) is plan_for(triangle())
        assert plan_for(triangle()) is not plan_for(triangle(), induced=True)

    def test_conditions_keyed_within_order(self):
        plan = plan_for(clique(3))
        # every step's condition references an earlier position
        for position, entries in plan.conditions_at.items():
            for earlier, _greater in entries:
                assert earlier < position
