"""Tests for the ETask mining engine against brute-force counting."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import erdos_renyi, triangle_count
from repro.mining import (
    CollectProcessor,
    CountProcessor,
    FirstMatchProcessor,
    MiningEngine,
)
from repro.patterns import (
    Pattern,
    automorphisms,
    clique,
    cycle,
    diamond,
    path,
    star,
    subpattern_embeddings,
    tailed_triangle,
    triangle,
)

from conftest import graph_strategy, labeled_random_graph


def brute_count(graph, pattern, induced):
    """Subgraph-match count via per-vertex-set embedding counting."""
    n_aut = len(automorphisms(pattern))
    k = pattern.num_vertices
    total = 0
    for combo in itertools.combinations(range(graph.num_vertices), k):
        position = {v: i for i, v in enumerate(combo)}
        edges = [
            (position[u], position[w])
            for u in combo
            for w in graph.neighbors(u)
            if w in position and u < w
        ]
        labels = None
        if graph.is_labeled:
            labels = [graph.label(v) for v in combo]
        mini = Pattern(k, edges, labels=labels)
        embeddings = [
            e
            for e in subpattern_embeddings(pattern, mini, induced=induced)
        ]
        total += len(embeddings) // n_aut
    return total


class TestCounts:
    def test_triangles_match_oracle(self):
        g = erdos_renyi(35, 0.25, seed=3)
        assert MiningEngine(g).count(triangle()) == triangle_count(g)

    @pytest.mark.parametrize("induced", [False, True])
    @pytest.mark.parametrize(
        "pattern",
        [triangle(), clique(4), path(2), tailed_triangle(), diamond(),
         cycle(4), star(3)],
        ids=lambda p: p.name,
    )
    def test_library_patterns_vs_brute_force(self, pattern, induced):
        g = erdos_renyi(18, 0.35, seed=9)
        engine = MiningEngine(g, induced=induced)
        assert engine.count(pattern) == brute_count(g, pattern, induced)

    def test_labeled_pattern(self):
        g = labeled_random_graph(20, 0.3, num_labels=3, seed=5)
        pattern = triangle().with_labels([0, 1, None])
        engine = MiningEngine(g)
        assert engine.count(pattern) == brute_count(g, pattern, False)

    @given(graph_strategy(max_vertices=10), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_triangle_count_property(self, g, induced):
        engine = MiningEngine(g, induced=induced)
        assert engine.count(triangle()) == brute_count(g, triangle(), induced)


class TestMatchesAndProcessors:
    def test_matches_are_valid_and_unique(self):
        g = erdos_renyi(16, 0.4, seed=2)
        engine = MiningEngine(g)
        matches = engine.find_all(clique(3))
        seen = set()
        for match in matches:
            assert match.assignment not in seen
            seen.add(match.assignment)
            for u, v in triangle().edges:
                assert g.has_edge(match.vertex_for(u), match.vertex_for(v))
        # one match per vertex set for cliques
        assert len({m.vertex_set for m in matches}) == len(matches)

    def test_collect_limit_stops_early(self):
        g = erdos_renyi(20, 0.5, seed=1)
        engine = MiningEngine(g)
        matches = engine.explore(
            triangle(), CollectProcessor(limit=5)
        ).result()
        assert len(matches) == 5

    def test_first_match(self):
        g = erdos_renyi(20, 0.5, seed=1)
        assert MiningEngine(g).exists(triangle())
        assert not MiningEngine(g).exists(clique(10))

    def test_exists_containing(self):
        g = erdos_renyi(14, 0.5, seed=4)
        engine = MiningEngine(g)
        match = engine.find_all(clique(4), limit=1)[0]
        three = frozenset(list(match.vertex_set)[:3])
        assert engine.exists_containing(clique(4), three)
        assert not engine.exists_containing(
            clique(4), frozenset({0, 1, 2, 3, 4})
        )

    def test_counts_per_pattern_name(self):
        g = erdos_renyi(12, 0.5, seed=7)
        engine = MiningEngine(g)
        processor = engine.explore(triangle(), CountProcessor())
        assert processor.per_pattern == {"triangle": processor.total}


class TestEngineInternals:
    def test_stats_populated(self):
        g = erdos_renyi(15, 0.4, seed=6)
        engine = MiningEngine(g)
        engine.count(tailed_triangle())
        assert engine.stats.etasks_started == 15
        assert engine.stats.rl_paths > 0
        assert engine.stats.matches_found > 0

    def test_shared_cache_mode_reuses_across_patterns(self):
        g = erdos_renyi(15, 0.5, seed=6)
        engine = MiningEngine(g, per_task_caches=False)
        engine.count(clique(3))
        engine.count(clique(4))  # reuses pairwise intersections
        assert engine.stats.cache_hits > 0

    def test_per_task_caches_isolate_roots(self):
        # Plain single-pattern exploration never revisits a semantic
        # key within one rooted task, so per-task caches see no hits —
        # reuse comes from fusion/promotion (the Contigra layer).
        g = erdos_renyi(15, 0.6, seed=6)
        engine = MiningEngine(g, induced=True, per_task_caches=True)
        engine.count(clique(4))
        assert engine.stats.cache_hits == 0

    def test_per_task_mode_counts_match_shared_mode(self):
        g = erdos_renyi(18, 0.4, seed=12)
        a = MiningEngine(g, per_task_caches=True).count(tailed_triangle())
        b = MiningEngine(g, per_task_caches=False).count(tailed_triangle())
        assert a == b

    def test_cache_disabled(self):
        g = erdos_renyi(15, 0.5, seed=6)
        engine = MiningEngine(g, cache_enabled=False)
        engine.count(clique(3))
        engine.count(clique(4))
        assert engine.stats.cache_hits == 0

    def test_workers_agree_with_serial(self):
        g = erdos_renyi(25, 0.3, seed=8)
        serial = MiningEngine(g).count(tailed_triangle())
        threaded = MiningEngine(g, n_workers=4).count(tailed_triangle())
        assert serial == threaded

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            MiningEngine(erdos_renyi(5, 0.5, seed=0), n_workers=0)

    def test_roots_restriction(self):
        g = erdos_renyi(15, 0.5, seed=6)
        engine = MiningEngine(g)
        processor = engine.explore(
            triangle(), CountProcessor(), roots=[0, 1]
        )
        full = MiningEngine(g).count(triangle())
        assert 0 < processor.total <= full
