"""Tests for experiment-record persistence and regression comparison."""

import json

import pytest

from repro.bench.harness import OK, TLE, RunOutcome
from repro.bench.persist import ExperimentRecord, compare_records, load_record


def make_record(seconds=1.0, status=OK, count=5):
    record = ExperimentRecord("exp")
    outcome = RunOutcome(status, seconds, count=count)
    record.add_outcome("amazon", outcome, gamma=0.8)
    record.add_claim("paper says X", "we measured Y")
    return record


class TestRecord:
    def test_roundtrip(self, tmp_path):
        record = make_record()
        path = record.save(str(tmp_path))
        loaded = load_record(path)
        assert loaded["experiment"] == "exp"
        assert loaded["rows"][0]["label"] == "amazon"
        assert loaded["rows"][0]["gamma"] == 0.8
        assert loaded["claims"][0]["paper"] == "paper says X"

    def test_add_row_plain(self, tmp_path):
        record = ExperimentRecord("exp")
        record.add_row(dataset="dblp", value=3)
        path = record.save(str(tmp_path))
        assert load_record(path)["rows"][0]["value"] == 3

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"experiment": "x"}))
        with pytest.raises(ValueError):
            load_record(str(path))


class TestCompare:
    def test_identical_runs_no_differences(self):
        a = make_record().to_dict()
        b = make_record().to_dict()
        assert compare_records(a, b) == []

    def test_status_change_flagged(self):
        a = make_record(status=OK).to_dict()
        b = make_record(status=TLE).to_dict()
        diffs = compare_records(a, b)
        assert any("status" in d for d in diffs)

    def test_timing_tolerance(self):
        a = make_record(seconds=1.0).to_dict()
        slightly = make_record(seconds=1.2).to_dict()
        wildly = make_record(seconds=3.0).to_dict()
        assert compare_records(a, slightly) == []
        assert any("time" in d for d in compare_records(a, wildly))

    def test_count_change_flagged(self):
        a = make_record(count=5).to_dict()
        b = make_record(count=6).to_dict()
        assert any("count" in d for d in compare_records(a, b))

    def test_row_addition_and_removal(self):
        a = make_record().to_dict()
        b = make_record().to_dict()
        b["rows"] = []
        assert any("missing" in d for d in compare_records(a, b))
        assert any("new" in d for d in compare_records(b, a))

    def test_different_experiments_rejected(self):
        a = make_record().to_dict()
        b = make_record().to_dict()
        b["experiment"] = "other"
        with pytest.raises(ValueError):
            compare_records(a, b)
