"""Unit tests for the Pattern type."""

import pytest
from hypothesis import given, settings

from repro.patterns import Pattern, clique, diamond, house, triangle

from conftest import connected_pattern_strategy


class TestConstruction:
    def test_basic(self):
        p = Pattern(3, [(0, 1), (1, 2)])
        assert p.num_vertices == 3
        assert p.num_edges == 2
        assert p.has_edge(1, 0)
        assert not p.has_edge(0, 2)

    def test_edge_normalization_and_dedup(self):
        p = Pattern(2, [(1, 0), (0, 1)])
        assert p.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 0)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 2)])

    def test_zero_vertices_rejected(self):
        with pytest.raises(ValueError):
            Pattern(0, [])

    def test_all_wildcard_labels_collapse_to_unlabeled(self):
        p = Pattern(2, [(0, 1)], labels=[None, None])
        assert not p.is_labeled

    def test_anti_vertex_range_checked(self):
        with pytest.raises(ValueError):
            Pattern(2, [(0, 1)], anti_vertices=[5])


class TestStructure:
    def test_density(self):
        assert triangle().density == pytest.approx(1.0)
        assert Pattern(3, [(0, 1)]).density == pytest.approx(1 / 3)

    def test_min_degree(self):
        assert triangle().min_degree() == 2
        assert Pattern(3, [(0, 1), (1, 2)]).min_degree() == 1

    def test_is_connected(self):
        assert triangle().is_connected()
        assert not Pattern(3, [(0, 1)]).is_connected()

    def test_is_clique(self):
        assert clique(4).is_clique()
        assert not diamond().is_clique()

    def test_neighbors(self):
        p = house()
        assert 1 in p.neighbors(0)


class TestDerivedPatterns:
    def test_relabel_permutation(self):
        p = Pattern(3, [(0, 1)], labels=[7, 8, 9])
        q = p.relabel({0: 2, 1: 0, 2: 1})
        assert q.has_edge(2, 0)
        assert q.label(2) == 7

    def test_relabel_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            triangle().relabel({0: 0, 1: 0, 2: 2})

    def test_subpattern_preserves_order(self):
        p = diamond()
        sub = p.subpattern([2, 0])
        # vertex 0 of sub is pattern vertex 2, vertex 1 is pattern vertex 0
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1) == p.has_edge(2, 0)

    def test_subpattern_rejects_duplicates(self):
        with pytest.raises(ValueError):
            triangle().subpattern([0, 0])

    def test_with_labels_and_unlabeled_roundtrip(self):
        p = triangle().with_labels([1, 2, 3])
        assert p.is_labeled
        assert not p.unlabeled().is_labeled

    def test_add_vertex(self):
        p = triangle().add_vertex([0, 1])
        assert p.num_vertices == 4
        assert p.has_edge(3, 0)
        assert p.has_edge(3, 1)
        assert not p.has_edge(3, 2)


class TestIdentity:
    def test_canonical_key_isomorphism_invariant(self):
        a = Pattern(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
        b = Pattern(4, [(1, 2), (2, 3), (3, 0), (0, 1), (1, 3)])
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_distinguishes(self):
        assert (
            Pattern(3, [(0, 1), (1, 2)]).canonical_key()
            != triangle().canonical_key()
        )

    def test_canonical_key_respects_labels(self):
        a = triangle().with_labels([1, 1, 2])
        b = triangle().with_labels([1, 2, 1])
        c = triangle().with_labels([2, 2, 1])
        assert a.canonical_key() == b.canonical_key()
        assert a.canonical_key() != c.canonical_key()

    def test_equality_and_hash(self):
        assert triangle() == Pattern(3, [(0, 1), (1, 2), (0, 2)])
        assert hash(triangle()) == hash(Pattern(3, [(0, 1), (1, 2), (0, 2)]))

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=40, deadline=None)
    def test_canonical_key_invariant_under_relabeling(self, p):
        import random

        rng = random.Random(0)
        perm = list(range(p.num_vertices))
        rng.shuffle(perm)
        q = p.relabel({old: new for old, new in enumerate(perm)})
        assert p.canonical_key() == q.canonical_key()
