"""Structural tests for the paper's NSQ query definitions and the app."""

import pytest

from repro.apps.nsq import (
    nested_subgraph_query,
    paper_query_tailed_triangles,
    paper_query_triangles,
)
from repro.graph import erdos_renyi, graph_from_edges
from repro.patterns import contains, tailed_triangle, triangle


class TestQueryDefinitions:
    def test_query1_shapes(self):
        p_m, p_plus = paper_query_triangles()
        assert p_m == triangle()
        assert len(p_plus) == 2
        for containing in p_plus:
            assert containing.num_vertices == 5
            assert contains(p_m, containing)
            assert containing.is_connected()

    def test_query2_shapes(self):
        p_m, p_plus = paper_query_tailed_triangles()
        assert p_m == tailed_triangle()
        assert len(p_plus) == 2
        for containing in p_plus:
            assert containing.num_vertices == 6
            assert contains(p_m, containing)
            assert containing.is_connected()

    def test_query2_extensions_are_multi_anchored(self):
        """The chosen Fig 12b stand-ins must exercise task fusion:
        at least one added vertex attaches to two existing ones."""
        p_m, p_plus = paper_query_tailed_triangles()
        for containing in p_plus:
            multi = [
                v
                for v in containing.vertices()
                if v >= p_m.num_vertices and containing.degree(v) >= 2
            ]
            assert multi


class TestAppSemantics:
    def test_triangle_alone_is_valid(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        p_m, p_plus = paper_query_triangles()
        result = nested_subgraph_query(g, p_m, p_plus)
        assert result.count == 1

    def test_contained_triangle_is_excluded(self):
        # build an explicit house: roof triangle 0-1-2, body 1-3-4-2
        g = graph_from_edges(
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4), (3, 4)]
        )
        p_m, p_plus = paper_query_triangles()
        result = nested_subgraph_query(g, p_m, p_plus)
        assert result.count == 0

    def test_stats_expose_vtask_activity(self):
        g = erdos_renyi(14, 0.25, seed=3)
        p_m, p_plus = paper_query_triangles()
        result = nested_subgraph_query(g, p_m, p_plus)
        assert result.stats.vtasks_started >= result.stats.matches_checked

    def test_empty_constraint_list_accepts_everything(self):
        from repro.mining import MiningEngine

        g = erdos_renyi(12, 0.3, seed=4)
        result = nested_subgraph_query(g, triangle(), [])
        assert result.count == MiningEngine(g).count(triangle())
