"""Extended tests for merged-label multi-pattern exploration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining import (
    CollectProcessor,
    CountProcessor,
    MiningEngine,
    MultiPatternExplorer,
    group_by_structure,
    match_pattern_key,
)
from repro.patterns import Pattern, path, star, triangle

from conftest import labeled_random_graph


class TestAttribution:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_group_counts_equal_direct_counts(self, seed):
        """Merged exploration attributes exactly the per-pattern counts."""
        g = labeled_random_graph(14, 0.35, num_labels=3, seed=seed)
        patterns = [
            triangle().with_labels([0, 1, 2]),
            triangle().with_labels([0, 0, 0]),
            path(2).with_labels([0, 1, 0]),
            path(2).with_labels([1, None, 2]),
        ]
        engine = MiningEngine(g, induced=True)
        explorer = MultiPatternExplorer(engine, patterns)
        processor = CountProcessor()
        results = explorer.explore(processor)
        attributed = sum(count for _, count in results)
        direct = sum(
            MiningEngine(g, induced=True).count(p)
            for p in patterns
            if not p.labels or None not in p.labels
        )
        # wildcard-bearing patterns attribute by exact labeled class,
        # so compare only the fully-labeled ones directly...
        fully_labeled = [p for p in patterns if None not in p.labels]
        direct = sum(
            MiningEngine(g, induced=True).count(p) for p in fully_labeled
        )
        assert attributed >= direct  # wildcards can only add

    def test_structures_explored_once_per_group(self):
        g = labeled_random_graph(12, 0.4, num_labels=2, seed=3)
        patterns = [
            triangle().with_labels([0, 0, 1]),
            triangle().with_labels([1, 1, 0]),
        ]
        engine = MiningEngine(g, induced=True)
        explorer = MultiPatternExplorer(engine, patterns)
        assert len(explorer.groups) == 1

    def test_match_pattern_key_unlabeled_graph(self):
        from repro.graph import erdos_renyi

        g = erdos_renyi(8, 0.5, seed=1)
        key = match_pattern_key(g, [0, 1, 2])
        assert isinstance(key, tuple)

    def test_group_by_structure_distinguishes_shapes(self):
        patterns = [
            triangle().with_labels([0, 1, 2]),
            star(2).with_labels([0, 1, 2]),  # path shape, not triangle
        ]
        assert len(group_by_structure(patterns)) == 2


class TestAttributionSemantics:
    def test_dropped_matches_not_counted(self):
        """Matches whose labels fit no member are silently dropped."""
        from repro.graph import Graph

        g = Graph([(1, 2), (0, 2), (0, 1)], labels=[5, 5, 5])
        member = triangle().with_labels([0, 0, 0])  # label 0 absent
        engine = MiningEngine(g, induced=True)
        explorer = MultiPatternExplorer(engine, [member])
        collected = CollectProcessor()
        results = explorer.explore(collected)
        assert results[0][1] == 0
        assert collected.result() == []

    def test_attribute_returns_member(self):
        from repro.graph import Graph
        from repro.mining import Match

        g = Graph([(1, 2), (0, 2), (0, 1)], labels=[7, 7, 8])
        member = triangle().with_labels([7, 7, 8])
        engine = MiningEngine(g, induced=True)
        explorer = MultiPatternExplorer(engine, [member])
        group = explorer.groups[0]
        match = Match(triangle(), [0, 1, 2])
        assert group.attribute(g, match) == member
