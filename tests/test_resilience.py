"""Unit tests for the resilience layer (repro.exec.resilience).

Covers the retry policy (deterministic seeded backoff, cap, split
schedule), the transient/terminal failure classification, residual
budget specs, multi-failure triage, degraded-result marking, and the
fault-injection plan primitives the chaos suite is built on.
"""

import pickle
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import (
    MemoryBudgetExceeded,
    StorageBudgetExceeded,
    TimeLimitExceeded,
)
from repro.exec import Budget
from repro.exec.resilience import (
    BUDGET_ERRORS,
    FAULT_KINDS,
    ON_FAILURE_MODES,
    BudgetSpec,
    Fault,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    TransientWorkerError,
    is_transient,
    mark_degraded,
    select_primary_failure,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3,
            jitter=0.0,
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(10) == pytest.approx(0.3)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            backoff_base=0.1, jitter=0.5, seed=7
        )
        # Same (seed, key, attempt) -> same delay, every time.
        assert policy.delay(1, key=3) == policy.delay(1, key=3)
        # Different keys/attempts spread, but stay within +-jitter/2.
        for key in range(20):
            d = policy.delay(1, key=key)
            assert 0.075 <= d <= 0.125
        spread = {policy.delay(1, key=k) for k in range(20)}
        assert len(spread) > 1

    def test_different_seeds_differ(self):
        a = RetryPolicy(seed=0).delay(1, key=1)
        b = RetryPolicy(seed=1).delay(1, key=1)
        assert a != b

    def test_split_schedule(self):
        policy = RetryPolicy(split_retries=True)
        assert not policy.should_split(0, 10)  # initial dispatch
        assert policy.should_split(1, 10)      # first retry splits
        assert policy.should_split(2, 10)
        assert not policy.should_split(1, 1)   # nothing to split
        off = RetryPolicy(split_retries=False)
        assert not off.should_split(1, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_transient_types_widen_classification(self):
        policy = RetryPolicy(transient_types=(OSError,))
        assert policy.is_transient(OSError("flaky disk"))
        assert not policy.is_transient(ValueError("logic bug"))
        # Budget errors stay terminal even when a listed type matches.
        wide = RetryPolicy(transient_types=(Exception,))
        assert not wide.is_transient(TimeLimitExceeded(1.0, 2.0))


class TestTransientClassification:
    def test_budget_errors_are_terminal(self):
        for exc in (
            TimeLimitExceeded(1.0, 2.0),
            MemoryBudgetExceeded(10, 20),
            StorageBudgetExceeded(10, 20),
        ):
            assert isinstance(exc, BUDGET_ERRORS)
            assert not is_transient(exc)

    def test_worker_crashes_are_transient(self):
        assert is_transient(TransientWorkerError("lost sandbox"))
        assert is_transient(InjectedFault(3, 0))
        assert is_transient(BrokenProcessPool("worker died"))

    def test_ordinary_errors_are_terminal(self):
        assert not is_transient(ValueError("bad input"))
        assert not is_transient(KeyboardInterrupt())

    def test_injected_fault_survives_pickling(self):
        fault = InjectedFault(5, 2)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert clone.root == 5 and clone.attempt == 2


class TestBudgetSpec:
    def test_residual_subtracts_progress(self):
        budget = Budget(
            time_limit=10.0,
            memory_budget_bytes=1000,
            storage_budget_bytes=500,
        )
        budget.charge_memory(400)
        budget.charge_storage(100)
        budget.start = time.monotonic() - 4.0  # simulate 4s elapsed
        spec = BudgetSpec.residual(budget)
        assert spec.time_limit == pytest.approx(6.0, abs=0.1)
        assert spec.memory_budget_bytes == 600
        assert spec.storage_budget_bytes == 400
        assert not spec.exhausted

    def test_residual_unlimited_stays_unlimited(self):
        spec = BudgetSpec.residual(Budget())
        assert spec.time_limit is None
        assert spec.memory_budget_bytes is None
        assert spec.storage_budget_bytes is None
        assert not spec.exhausted

    def test_exhausted_when_any_dimension_empty(self):
        assert BudgetSpec(time_limit=0.0).exhausted
        assert BudgetSpec(memory_budget_bytes=0).exhausted
        assert BudgetSpec(storage_budget_bytes=0).exhausted
        assert not BudgetSpec(time_limit=1.0).exhausted

    def test_apply_caps_but_never_extends(self):
        spec = BudgetSpec(time_limit=2.0, memory_budget_bytes=100)
        worker = Budget(time_limit=10.0, memory_budget_bytes=50)
        spec.apply(worker)
        assert worker.time_limit == 2.0     # capped down
        assert worker.memory_budget_bytes == 50  # already tighter
        unlimited = Budget()
        spec.apply(unlimited)
        assert unlimited.time_limit == 2.0  # imposed on unlimited
        assert unlimited.memory_budget_bytes == 100

    def test_apply_reanchors_clock(self):
        worker = Budget(time_limit=5.0)
        worker.start = time.monotonic() - 100.0
        BudgetSpec(time_limit=1.0).apply(worker)
        assert worker.elapsed() < 1.0

    def test_spec_is_picklable(self):
        spec = BudgetSpec(1.5, 10, 20)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFailureTriage:
    def test_budget_error_beats_secondary_noise(self):
        tle = TimeLimitExceeded(1.0, 2.0)
        noise = TransientWorkerError("cancelled mid-flight")
        other = RuntimeError("finish raised")
        selected = select_primary_failure([noise, other, tle])
        assert selected is tle
        assert selected.__cause__ is noise
        assert set(selected.suppressed_failures) == {noise, other}

    def test_ties_go_to_arrival_order(self):
        first = ValueError("a")
        second = ValueError("b")
        assert select_primary_failure([first, second]) is first

    def test_single_failure_passthrough(self):
        exc = RuntimeError("only one")
        selected = select_primary_failure([exc])
        assert selected is exc
        assert selected.suppressed_failures == ()

    def test_existing_cause_is_preserved(self):
        tle = TimeLimitExceeded(1.0, 2.0)
        original = KeyError("root cause")
        tle.__cause__ = original
        select_primary_failure([tle, ValueError("x")])
        assert tle.__cause__ is original

    def test_empty_failures_rejected(self):
        with pytest.raises(ValueError):
            select_primary_failure([])


class TestMarkDegraded:
    def test_marks_sorted_deduped_roots_and_reasons(self):
        class Result:
            pass

        result = Result()
        out = mark_degraded(
            result, [5, 2, 5, 9], [TimeLimitExceeded(1.0, 2.0)]
        )
        assert out is result
        assert result.incomplete is True
        assert result.unprocessed_roots == [2, 5, 9]
        assert len(result.failure_reasons) == 1
        assert result.failure_reasons[0].startswith("TimeLimitExceeded")


class TestFaultPlan:
    def test_vocabulary(self):
        assert set(FAULT_KINDS) == {"kill", "crash", "delay", "exhaust"}
        assert ON_FAILURE_MODES == ("raise", "degrade")

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault("explode", 0)
        with pytest.raises(ValueError):
            Fault("crash", 0, times=0)

    def test_matching_is_root_and_attempt_scoped(self):
        fault = Fault("crash", 3, times=2)
        assert fault.matches([1, 2, 3], 0)
        assert fault.matches([3], 1)
        assert not fault.matches([3], 2)   # injection budget spent
        assert not fault.matches([1, 2], 0)  # root not in shard

    def test_crash_raises_injected_fault(self):
        plan = FaultPlan().crash(4)
        with pytest.raises(InjectedFault) as info:
            plan.fire([4, 5], 0)
        assert info.value.root == 4
        plan.fire([4, 5], 1)  # attempt past `times`: quiet
        plan.fire([5], 0)     # root not dispatched: quiet

    def test_exhaust_raises_terminal_tle(self):
        plan = FaultPlan().exhaust(1)
        with pytest.raises(TimeLimitExceeded) as info:
            plan.fire([1], 0)
        assert not is_transient(info.value)

    def test_delay_sleeps(self):
        plan = FaultPlan().delay(2, seconds=0.02)
        start = time.monotonic()
        plan.fire([2], 0)
        assert time.monotonic() - start >= 0.02

    def test_kill_demoted_in_process(self):
        # allow_kill=False (thread/serial workers) must never _exit the
        # interpreter; the fault demotes to a transient crash.
        plan = FaultPlan().kill(7)
        with pytest.raises(InjectedFault):
            plan.fire([7], 0, allow_kill=False)

    def test_plan_is_picklable(self):
        plan = FaultPlan(seed=3).kill(1).crash(2, times=2).delay(3, 0.1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 3
        assert clone.faults == plan.faults
