"""Tests for graph generators and classic graph algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    attach_labels,
    bfs_distances,
    clustering_profile,
    community_graph,
    connected_components,
    degeneracy_order,
    disjoint_union,
    erdos_renyi,
    graph_from_edges,
    is_clique,
    k_core,
    powerlaw_graph,
    triangle_count,
)

from conftest import graph_strategy


class TestGenerators:
    def test_erdos_renyi_deterministic(self):
        a = erdos_renyi(30, 0.3, seed=5)
        b = erdos_renyi(30, 0.3, seed=5)
        assert a == b
        assert a != erdos_renyi(30, 0.3, seed=6)

    def test_erdos_renyi_extremes(self):
        empty = erdos_renyi(10, 0.0, seed=0)
        full = erdos_renyi(10, 1.0, seed=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_powerlaw_heavy_tail(self):
        g = powerlaw_graph(300, edges_per_vertex=3, seed=1)
        assert g.num_vertices == 300
        # preferential attachment: max degree far above average
        avg = 2 * g.num_edges / g.num_vertices
        assert g.max_degree > 3 * avg

    def test_powerlaw_invalid(self):
        with pytest.raises(ValueError):
            powerlaw_graph(10, edges_per_vertex=0)

    def test_community_structure(self):
        g = community_graph(5, 10, intra_probability=0.8, inter_edges=1,
                            seed=2)
        assert g.num_vertices == 50
        # intra-community density dwarfs overall density
        first = list(range(10))
        intra = g.edges_within(first)
        assert intra > 0.5 * (10 * 9 / 2) * 0.5

    def test_attach_labels_zipf_skew(self):
        g = attach_labels(erdos_renyi(500, 0.01, seed=3), num_labels=10,
                          seed=3)
        freq = g.label_frequencies()
        assert freq[0] > freq.get(9, 0)
        assert g.num_labels <= 10

    def test_attach_labels_invalid(self):
        with pytest.raises(ValueError):
            attach_labels(erdos_renyi(5, 0.5, seed=0), num_labels=0)

    def test_disjoint_union(self):
        a = graph_from_edges([(0, 1)])
        b = graph_from_edges([(0, 1), (1, 2)])
        u = disjoint_union([a, b])
        assert u.num_vertices == 5
        assert u.num_edges == 3
        assert not u.has_edge(1, 2)  # no cross edges


class TestAlgorithms:
    def test_connected_components(self):
        g = graph_from_edges([(0, 1), (2, 3), (3, 4)])
        components = sorted(connected_components(g), key=len)
        assert components == [[0, 1], [2, 3, 4]]

    def test_degeneracy_of_clique(self):
        g = graph_from_edges(
            [(u, v) for u in range(5) for v in range(u + 1, 5)]
        )
        order, degeneracy = degeneracy_order(g)
        assert degeneracy == 4
        assert sorted(order) == list(range(5))

    def test_degeneracy_of_tree(self):
        g = graph_from_edges([(0, 1), (1, 2), (1, 3), (3, 4)])
        _, degeneracy = degeneracy_order(g)
        assert degeneracy == 1

    def test_k_core(self):
        # triangle with pendant: 2-core is the triangle
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert k_core(g, 2) == {0, 1, 2}
        assert k_core(g, 3) == set()
        assert k_core(g, 0) == {0, 1, 2, 3}

    def test_triangle_count(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)])
        assert triangle_count(g) == 2

    def test_bfs_distances(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        assert bfs_distances(g, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_unreachable_absent(self):
        g = graph_from_edges([(0, 1), (2, 3)])
        assert 2 not in bfs_distances(g, 0)

    def test_is_clique(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        assert is_clique(g, [0, 1, 2])
        assert not is_clique(g, [0, 1, 3])

    def test_clustering_profile(self):
        g = erdos_renyi(20, 0.3, seed=4)
        profile = clustering_profile(g)
        assert profile["vertices"] == 20
        assert profile["density"] == pytest.approx(g.density)

    @given(graph_strategy(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_kcore_property(self, g):
        """Every vertex of the k-core has >= k neighbors in the core."""
        for k in (1, 2, 3):
            core = k_core(g, k)
            for v in core:
                assert sum(1 for w in g.neighbors(v) if w in core) >= k

    @given(graph_strategy(max_vertices=12))
    @settings(max_examples=40, deadline=None)
    def test_components_partition(self, g):
        components = connected_components(g)
        flat = [v for component in components for v in component]
        assert sorted(flat) == list(g.vertices())

    @given(graph_strategy(max_vertices=10))
    @settings(max_examples=30, deadline=None)
    def test_degeneracy_bounds(self, g):
        _, degeneracy = degeneracy_order(g)
        assert degeneracy <= g.max_degree
        if g.num_edges:
            assert degeneracy >= 1
