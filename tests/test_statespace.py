"""Tests for virtual state-space analysis (paper §7)."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import statespace
from repro.core.statespace import (
    EAGER,
    NO_CHECK,
    SKIP,
    classify_all,
    classify_minimality,
    covers,
    has_connected_cover_smaller_than,
    is_minimal_cover,
    skip_ratio,
    virtual_state_space,
)
from repro.graph import Graph, graph_from_edges
from repro.patterns import Pattern, path, star, triangle

from conftest import labeled_random_graph

KW = frozenset({0, 1, 2})


class TestVirtualStateSpace:
    def test_proper_connected_only(self):
        states = virtual_state_space(triangle())
        sizes = sorted(len(subset) for subset, _ in states)
        assert sizes == [1, 1, 1, 2, 2, 2]  # no size-3 (improper)

    def test_subpatterns_carry_labels(self):
        p = path(2).with_labels([0, 1, 2])
        labels = {
            tuple(sub.labels) for _, sub in virtual_state_space(p)
        }
        assert (0, 1) in labels


class TestClassification:
    def test_skip_when_subpattern_covers(self):
        # path 0-1-2-3 labeled kw0,kw1,kw2,* — prefix 0-1-2 covers.
        p = path(3).with_labels([0, 1, 2, None])
        assert classify_minimality(p, KW) == SKIP

    def test_no_check_when_cover_needs_every_vertex(self):
        p = path(2).with_labels([0, 1, 2])
        assert classify_minimality(p, KW) == NO_CHECK

    def test_eager_when_wildcard_could_complete(self):
        # star: center wildcard, leaves kw0..kw2.  Any proper connected
        # sub needs the center; a keyword-labeled center in the data
        # would make 'center+two leaves' a cover.
        p = star(3).with_labels([None, 0, 1, 2])
        assert classify_minimality(p, KW) == EAGER

    def test_triangle_exact_cover(self):
        p = triangle().with_labels([0, 1, 2])
        assert classify_minimality(p, KW) == NO_CHECK

    def test_classify_all_partitions(self):
        patterns = [
            path(3).with_labels([0, 1, 2, None]),
            path(2).with_labels([0, 1, 2]),
            star(3).with_labels([None, 0, 1, 2]),
        ]
        buckets = classify_all(patterns, KW)
        assert len(buckets[SKIP]) == 1
        assert len(buckets[NO_CHECK]) == 1
        assert len(buckets[EAGER]) == 1
        assert skip_ratio(buckets) == 1 / 3

    def test_skip_ratio_empty(self):
        assert skip_ratio({SKIP: [], NO_CHECK: [], EAGER: []}) == 0.0


class TestDataLevelChecks:
    def _labeled_path(self, labels):
        g = graph_from_edges(
            [(i, i + 1) for i in range(len(labels) - 1)]
        )
        return Graph(
            [g.neighbors(v) for v in g.vertices()], labels=labels
        )

    def test_covers(self):
        g = self._labeled_path([0, 1, 2, 9])
        assert covers(g, [0, 1, 2], KW)
        assert not covers(g, [0, 1, 3], KW)

    def test_minimal_cover_positive(self):
        g = self._labeled_path([0, 1, 2])
        assert is_minimal_cover(g, [0, 1, 2], KW)

    def test_minimal_cover_rejects_extra_leaf(self):
        g = self._labeled_path([0, 1, 2, 9])
        assert not is_minimal_cover(g, [0, 1, 2, 3], KW)

    def test_cut_vertex_keeps_minimality(self):
        # 0(kw0) - 1(*) - 2(kw1), plus 1-3(kw2): vertex 1 is unlabeled
        # but removing it disconnects -> minimal (paper Fig 3 note).
        g = graph_from_edges([(0, 1), (1, 2), (1, 3)])
        g = Graph([g.neighbors(v) for v in g.vertices()],
                  labels=[0, 9, 1, 2])
        assert is_minimal_cover(g, [0, 1, 2, 3], KW)

    def test_disconnected_not_cover(self):
        g = graph_from_edges([(0, 1), (2, 3)])
        g = Graph([g.neighbors(v) for v in g.vertices()],
                  labels=[0, 1, 2, 9])
        assert not is_minimal_cover(g, [0, 1, 2], KW)

    def test_has_connected_cover_smaller_than(self):
        g = self._labeled_path([0, 1, 2, 9])
        assert has_connected_cover_smaller_than(g, [0, 1, 2, 3], KW, 3)
        assert not has_connected_cover_smaller_than(g, [0, 1, 2], KW, 2)

    @given(st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_classification_consistent_with_data(self, seed):
        """SKIP-classified data shapes are never minimal; NO_CHECK
        shapes always are — on the data itself."""
        g = labeled_random_graph(10, 0.4, num_labels=5, seed=seed)
        keywords = KW
        for size in (3, 4):
            for combo in itertools.combinations(range(10), size):
                if not g.is_connected_subset(combo):
                    continue
                if not covers(g, combo, keywords):
                    continue
                labels = [
                    g.label(v) if g.label(v) in keywords else None
                    for v in combo
                ]
                position = {v: i for i, v in enumerate(combo)}
                edges = [
                    (position[u], position[w])
                    for u in combo
                    for w in g.neighbors(u)
                    if w in position and u < w
                ]
                pattern = Pattern(size, edges, labels=labels)
                cls = classify_minimality(pattern, keywords)
                minimal = is_minimal_cover(g, combo, keywords)
                if cls == SKIP:
                    assert not minimal
                elif cls == NO_CHECK:
                    assert minimal
