"""Tests for pattern-level containment relations."""

import pytest

from repro.patterns import (
    classify_constraint,
    clique,
    containment_closure,
    contains,
    cycle,
    embeddings,
    extension_sets,
    house,
    minimal_supersets,
    one_vertex_extensions,
    path,
    quasi_clique_patterns_up_to,
    tailed_triangle,
    triangle,
)


class TestContains:
    def test_triangle_in_clique(self):
        assert contains(triangle(), clique(5))

    def test_square_not_in_clique_induced(self):
        assert contains(cycle(4), clique(5), induced=False)
        assert not contains(cycle(4), clique(5), induced=True)

    def test_embeddings_structure(self):
        embs = embeddings(triangle(), house())
        assert embs  # the roof
        for emb in embs:
            for u, v in triangle().edges:
                assert house().has_edge(emb[u], emb[v])


class TestClassification:
    def test_successor(self):
        assert classify_constraint(triangle(), house()) == "successor"

    def test_predecessor(self):
        assert classify_constraint(house(), triangle()) == "predecessor"

    def test_equal_sizes_rejected(self):
        with pytest.raises(ValueError):
            classify_constraint(triangle(), path(2))


class TestExtensionSets:
    def test_added_vertices(self):
        results = extension_sets(triangle(), tailed_triangle())
        assert results
        for emb, added in results:
            assert len(added) == 1
            assert set(emb.values()) | set(added) == {0, 1, 2, 3}

    def test_empty_when_unrelated(self):
        assert extension_sets(cycle(4), clique(4), induced=True) == []


class TestClosure:
    def test_quasi_clique_closure_gamma08(self):
        by_size = quasi_clique_patterns_up_to(6, 0.8)
        flat = [p for size in sorted(by_size) for p in by_size[size]]
        closure = containment_closure(flat, induced=True)
        # the triangle (index 0) is inside every larger quasi-clique
        assert len(closure[0]) == len(flat) - 1
        # the largest patterns contain nothing bigger
        assert closure[len(flat) - 1] == []

    def test_one_vertex_extensions(self):
        candidates = [tailed_triangle(), clique(4), cycle(4), house()]
        extensions = one_vertex_extensions(triangle(), candidates)
        names = {p.name for p in extensions}
        assert names == {"tailed-triangle", "clique-4"}

    def test_minimal_supersets_ordering(self):
        universe = [clique(5), tailed_triangle(), clique(4), house()]
        supersets = minimal_supersets(triangle(), universe)
        sizes = [p.num_vertices for p in supersets]
        assert sizes == sorted(sizes)
        assert supersets[0].num_vertices == 4
