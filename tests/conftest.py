"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.graph import Graph, GraphBuilder, erdos_renyi
from repro.patterns import Pattern


def random_graph(
    num_vertices: int, edge_probability: float, seed: int
) -> Graph:
    """Seeded G(n, p) helper (thin alias used across test modules)."""
    return erdos_renyi(num_vertices, edge_probability, seed=seed)


def labeled_random_graph(
    num_vertices: int,
    edge_probability: float,
    num_labels: int,
    seed: int,
) -> Graph:
    """Seeded labeled G(n, p) with uniform labels."""
    rng = random.Random(seed)
    base = erdos_renyi(num_vertices, edge_probability, seed=seed)
    labels = [rng.randrange(num_labels) for _ in base.vertices()]
    return Graph([base.neighbors(v) for v in base.vertices()], labels=labels)


@st.composite
def graph_strategy(
    draw, max_vertices: int = 12, max_labels: int = 0
) -> Graph:
    """Hypothesis strategy producing small arbitrary graphs."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    builder = GraphBuilder()
    for v in range(n):
        builder.add_vertex(v)
    builder.add_edges(edges)
    if max_labels > 0:
        labels = draw(
            st.lists(
                st.integers(min_value=0, max_value=max_labels - 1),
                min_size=n,
                max_size=n,
            )
        )
        return Graph(
            [builder.build().neighbors(v) for v in range(n)], labels=labels
        )
    return builder.build()


@st.composite
def connected_pattern_strategy(draw, max_vertices: int = 5) -> Pattern:
    """Hypothesis strategy producing small connected patterns."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    edges = set()
    # Random spanning tree first to guarantee connectivity.
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.add((parent, v))
    possible = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if (u, v) not in edges
    ]
    if possible:
        extra = draw(
            st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        )
        edges.update(extra)
    return Pattern(n, edges)


@pytest.fixture
def small_graph() -> Graph:
    """The Figure 1 example graph of the paper (a..i)."""
    names = "abcdefghi"
    builder = GraphBuilder(name="fig1")
    edges = [
        ("a", "b"), ("a", "c"), ("a", "d"), ("a", "e"), ("a", "i"),
        ("b", "c"), ("b", "d"), ("b", "e"), ("b", "f"), ("b", "g"),
        ("c", "d"), ("c", "e"), ("c", "f"), ("c", "g"),
        ("d", "e"), ("d", "i"), ("e", "i"), ("f", "g"), ("g", "h"),
    ]
    for name in names:
        builder.add_vertex(name)
    builder.add_edges(edges)
    return builder.build()


@pytest.fixture
def triangle_graph() -> Graph:
    """One triangle plus a pendant vertex."""
    builder = GraphBuilder()
    builder.add_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    return builder.build()
