"""Focused tests for BridgeRecipe construction and ordering internals."""

import pytest

from repro.core.vtask import (
    BridgeRecipe,
    ValidationTarget,
    _connected_extension_orders,
    _orbit_representative_embeddings,
)
from repro.graph import erdos_renyi
from repro.patterns import clique, diamond_house, house, triangle


class TestBridgeRecipe:
    def test_anchors_follow_pattern_adjacency(self):
        # triangle (0,1,2 in house) extended to the full house
        embedding = (0, 1, 2)
        recipe = BridgeRecipe(house(), embedding, order=(3, 4))
        # vertex 3 attaches to 1 (and not 0/2); vertex 4 to 2 and 3
        assert set(recipe.anchors[0]) == {1}
        assert set(recipe.anchors[1]) == {2, 3}

    def test_nonneighbors_complement_anchors(self):
        embedding = (0, 1, 2)
        recipe = BridgeRecipe(house(), embedding, order=(3, 4))
        for step in range(2):
            assert not (
                set(recipe.anchors[step]) & set(recipe.nonneighbors[step])
            )

    def test_unanchored_order_rejected(self):
        # lollipop: triangle 0-1-2 with tail 2-3-4.  Binding the tail
        # tip (4) before its only neighbor (3) leaves it unanchored.
        from repro.patterns import Pattern

        lollipop = Pattern(
            5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]
        )
        with pytest.raises(ValueError):
            BridgeRecipe(lollipop, (0, 1, 2), order=(4, 3))

    def test_intermediate_density_recorded(self):
        recipe = BridgeRecipe(house(), (0, 1, 2), order=(3, 4))
        assert 0.0 < recipe.intermediate_density <= 1.0


class TestExtensionOrders:
    def test_all_orders_connected(self):
        orders = _connected_extension_orders(house(), [0, 1, 2], [3, 4])
        assert orders
        for order in orders:
            bound = {0, 1, 2}
            for v in order:
                assert any(house().has_edge(v, u) for u in bound)
                bound.add(v)

    def test_clique_extension_all_permutations_valid(self):
        orders = _connected_extension_orders(clique(5), [0, 1, 2], [3, 4])
        assert len(orders) == 2  # both orders of {3, 4}


class TestOrbitEmbeddings:
    def test_triangle_into_house_roof_only(self):
        reps = _orbit_representative_embeddings(
            triangle(), house(), induced=False
        )
        # the house's only triangle is the roof; Aut(house) has order 2
        # and fixes the roof setwise -> few representatives
        assert 1 <= len(reps) <= 3
        for image in reps:
            for u, v in triangle().edges:
                assert house().has_edge(image[u], image[v])

    def test_k4_into_k6_single_orbit(self):
        reps = _orbit_representative_embeddings(
            clique(4), clique(6), induced=True
        )
        assert len(reps) == 1

    def test_gap_recorded_and_recipe_count(self):
        g = erdos_renyi(10, 0.4, seed=0)
        target = ValidationTarget(
            triangle(), diamond_house(), g, induced=False
        )
        assert target.gap == 2
        assert all(len(r.order) == 2 for r in target.recipes)
