"""Tests for containment constraints and dependency derivation."""

import pytest

from repro.core import (
    LATERAL,
    PREDECESSOR,
    SUCCESSOR,
    ConstraintSet,
    ContainmentConstraint,
    derive_dependencies,
    maximality_constraints,
    minimality_constraints,
    nested_query_constraints,
)
from repro.patterns import (
    clique,
    cycle,
    house,
    quasi_clique_patterns_up_to,
    tailed_triangle,
    triangle,
)


class TestContainmentConstraint:
    def test_successor_classification(self):
        c = ContainmentConstraint(triangle(), house())
        assert c.is_successor
        assert not c.is_predecessor
        assert c.gap == 2

    def test_predecessor_classification(self):
        c = ContainmentConstraint(house(), triangle())
        assert c.is_predecessor
        assert c.gap == 2

    def test_unrelated_patterns_rejected(self):
        with pytest.raises(ValueError):
            ContainmentConstraint(cycle(4), clique(5), induced=True)

    def test_equal_size_rejected(self):
        with pytest.raises(ValueError):
            ContainmentConstraint(triangle(), triangle())


class TestConstraintSet:
    def test_lookup_by_pattern(self):
        cs = nested_query_constraints(triangle(), [house(), clique(4)])
        assert len(cs.constraints_for(triangle())) == 2
        assert cs.successor_constraints_for(triangle())
        assert not cs.predecessor_constraints_for(triangle())

    def test_constraint_for_unmined_pattern_rejected(self):
        constraint = ContainmentConstraint(triangle(), house())
        with pytest.raises(ValueError):
            ConstraintSet([house()], [constraint])

    def test_maximality_construction(self):
        by_size = quasi_clique_patterns_up_to(5, 0.8)
        cs = maximality_constraints(by_size)
        # triangle constrained by K4 and K5; K4 by K5; K5 by nothing.
        tri, k4, k5 = by_size[3][0], by_size[4][0], by_size[5][0]
        assert len(cs.successor_constraints_for(tri)) == 2
        assert len(cs.successor_constraints_for(k4)) == 1
        assert cs.constraints_for(k5) == []

    def test_minimality_construction(self):
        target = house().with_labels([1, 2, None, None, None])

        def covering(sub):
            labels = {lab for lab in sub.labels if lab is not None}
            return {1, 2} <= labels

        cs = minimality_constraints([target], covering)
        constraints = cs.constraints_for(target)
        assert constraints
        assert all(c.is_predecessor for c in constraints)


class TestDependencyGraph:
    def test_kinds_and_summary(self):
        by_size = quasi_clique_patterns_up_to(5, 0.8)
        graph = derive_dependencies(maximality_constraints(by_size))
        summary = graph.summary()
        assert summary[SUCCESSOR] == 3
        assert summary[PREDECESSOR] == 0
        # triangle has 2 VTask targets -> 1 lateral chain edge
        assert summary[LATERAL] == 1

    def test_lateral_groups(self):
        by_size = quasi_clique_patterns_up_to(6, 0.8)
        graph = derive_dependencies(maximality_constraints(by_size))
        groups = graph.lateral_groups()
        assert groups
        for _source, targets in groups:
            assert len(targets) > 1

    def test_single_constraint_no_lateral(self):
        cs = nested_query_constraints(triangle(), [house()])
        graph = derive_dependencies(cs)
        assert graph.summary()[LATERAL] == 0

    def test_gap_recorded(self):
        cs = nested_query_constraints(tailed_triangle(), [clique(6)])
        (edge,) = derive_dependencies(cs).edges
        assert edge.gap == 2

    def test_empty_constraint_set(self):
        cs = ConstraintSet([triangle()], [])
        graph = derive_dependencies(cs)
        assert graph.edges == []
        assert graph.lateral_groups() == []
        assert graph.summary() == {
            SUCCESSOR: 0, PREDECESSOR: 0, LATERAL: 0,
        }

    def test_pattern_constrained_against_itself_rejected(self):
        # Strict containment needs strictly more vertices; a pattern
        # can never be constrained against itself (or any same-size
        # pattern), so the constraint constructor refuses.
        with pytest.raises(ValueError):
            ContainmentConstraint(triangle(), triangle())
        with pytest.raises(ValueError):
            ContainmentConstraint(
                tailed_triangle(), cycle(4), induced=True
            )

    def test_lateral_groups_ordering_stable(self):
        by_size = quasi_clique_patterns_up_to(6, 0.8)
        cs = maximality_constraints(by_size)
        reference = derive_dependencies(cs).lateral_groups()
        for _ in range(3):
            groups = derive_dependencies(cs).lateral_groups()
            assert [
                (source.structure_key(),
                 [target.structure_key() for target in targets])
                for source, targets in groups
            ] == [
                (source.structure_key(),
                 [target.structure_key() for target in targets])
                for source, targets in reference
            ]
