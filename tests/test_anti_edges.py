"""Tests for anti-edges: per-pair induced semantics on edge-induced plans."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import pattern_matches
from repro.graph import erdos_renyi, graph_from_edges
from repro.mining import MiningEngine
from repro.patterns import (
    Pattern,
    automorphisms,
    parse_pattern,
    path,
    to_dsl,
    triangle,
)

from conftest import graph_strategy


def open_wedge():
    """Path 0-1-2 whose endpoints must NOT be adjacent."""
    return Pattern(3, [(0, 1), (1, 2)], anti_edges=[(0, 2)])


class TestPatternSupport:
    def test_construction_and_accessors(self):
        p = open_wedge()
        assert p.has_anti_edges
        assert p.has_anti_edge(0, 2)
        assert p.has_anti_edge(2, 0)
        assert not p.has_anti_edge(0, 1)

    def test_edge_and_anti_edge_conflict_rejected(self):
        with pytest.raises(ValueError):
            Pattern(3, [(0, 1)], anti_edges=[(0, 1)])

    def test_self_loop_and_range_checks(self):
        with pytest.raises(ValueError):
            Pattern(3, [(0, 1)], anti_edges=[(1, 1)])
        with pytest.raises(ValueError):
            Pattern(3, [(0, 1)], anti_edges=[(0, 5)])

    def test_identity_distinguishes_anti_edges(self):
        assert open_wedge() != path(2)
        assert open_wedge().canonical_key() != path(2).canonical_key()
        assert hash(open_wedge()) != hash(path(2))

    def test_subpattern_and_relabel_carry_anti_edges(self):
        p = open_wedge()
        q = p.relabel({0: 2, 1: 1, 2: 0})
        assert q.has_anti_edge(0, 2)
        sub = p.subpattern([0, 1, 2])
        assert sub.has_anti_edge(0, 2)

    def test_unlabeled_drops_anti_edges(self):
        assert not open_wedge().unlabeled().has_anti_edges

    def test_with_anti_edges(self):
        p = path(2).with_anti_edges([(0, 2)])
        assert p == open_wedge()

    def test_automorphisms_respect_anti_edges(self):
        # star with one anti-edge between two specific leaves: leaf
        # permutations must preserve that pair.
        star3 = Pattern(
            4, [(0, 1), (0, 2), (0, 3)], anti_edges=[(1, 2)]
        )
        for sigma in automorphisms(star3):
            pair = frozenset({sigma[1], sigma[2]})
            assert pair == frozenset({1, 2}) or star3.has_anti_edge(
                *sorted(pair)
            )


class TestMatchingSemantics:
    def test_open_wedges_exclude_triangles(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        engine = MiningEngine(g)
        wedges = engine.find_all(open_wedge())
        for match in wedges:
            a, _, c = (
                match.vertex_for(0), match.vertex_for(1), match.vertex_for(2)
            )
            assert not g.has_edge(a, c)
        # plain path-2 counts also include the closed (triangle) wedges
        assert engine.count(path(2)) > len(wedges)

    @pytest.mark.parametrize("seed", range(4))
    def test_counts_match_oracle(self, seed):
        g = erdos_renyi(14, 0.35, seed=seed)
        pattern = open_wedge()
        engine_count = MiningEngine(g).count(pattern)
        oracle = pattern_matches(g, pattern)
        assert engine_count == len(oracle) // len(automorphisms(pattern))

    def test_equivalence_with_induced_on_induced_class(self):
        """For a pattern whose anti-edges cover all non-edges, the
        edge-induced count equals the fully induced count."""
        g = erdos_renyi(14, 0.4, seed=7)
        all_anti = path(2).with_anti_edges([(0, 2)])
        via_anti = MiningEngine(g).count(all_anti)
        via_induced = MiningEngine(g, induced=True).count(path(2))
        assert via_anti == via_induced

    @given(graph_strategy(max_vertices=10), st.integers(0, 1))
    @settings(max_examples=20, deadline=None)
    def test_property_oracle_agreement(self, g, which):
        patterns = [
            open_wedge(),
            Pattern(
                4, [(0, 1), (1, 2), (2, 3)], anti_edges=[(0, 3), (0, 2)]
            ),
        ]
        pattern = patterns[which]
        engine_count = MiningEngine(g).count(pattern)
        oracle = pattern_matches(g, pattern)
        assert engine_count == len(oracle) // len(automorphisms(pattern))


class TestDSLSupport:
    def test_parse_anti_edges(self):
        p = parse_pattern("0-1-2; anti-edges 0-2")
        assert p == open_wedge()

    def test_roundtrip(self):
        p = Pattern(
            4, [(0, 1), (1, 2), (2, 3)], anti_edges=[(0, 3)]
        )
        assert parse_pattern(to_dsl(p)) == p

    def test_dot_marks_anti_edges(self):
        from repro.patterns import to_dot

        dot = to_dot(open_wedge())
        assert "dotted" in dot


class TestConstraintGuard:
    def test_constraints_reject_anti_edge_patterns(self):
        from repro.core import ContainmentConstraint

        bigger = Pattern(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        with pytest.raises(ValueError, match="anti-edge"):
            ContainmentConstraint(open_wedge(), bigger)
