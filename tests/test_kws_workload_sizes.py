"""KWS workloads beyond the paper's 3-keyword default."""

import pytest

from repro.apps.kws import classify_workload, keyword_patterns, keyword_search
from repro.baselines.naive import minimal_keyword_covers
from repro.core import statespace

from conftest import labeled_random_graph


class TestTwoKeywords:
    def test_pattern_workload_small(self):
        patterns = keyword_patterns([0, 1], 4)
        # sizes 2..4, two keyword placements; spot-check the floor
        assert len(patterns) >= 10
        for p in patterns:
            definite = {lab for lab in p.labels if lab is not None}
            assert definite == {0, 1}

    def test_classification_sums(self):
        buckets = classify_workload([0, 1], 4)
        total = sum(len(g) for g in buckets.values())
        assert total == len(keyword_patterns([0, 1], 4))

    @pytest.mark.parametrize("seed", range(3))
    def test_search_matches_oracle(self, seed):
        g = labeled_random_graph(16, 0.25, num_labels=5, seed=seed)
        got = keyword_search(
            g, [0, 1], 4, collect_workload_stats=False
        ).minimal
        assert got == minimal_keyword_covers(g, [0, 1], 4)


class TestFourKeywords:
    def test_pattern_workload_grows(self):
        three = keyword_patterns([0, 1, 2], 5)
        four = keyword_patterns([0, 1, 2, 3], 5)
        assert len(four) > len(three) / 2  # different shape mix
        for p in four:
            assert {lab for lab in p.labels if lab is not None} == {
                0, 1, 2, 3,
            }

    def test_skip_ratio_stays_high(self):
        buckets = classify_workload([0, 1, 2, 3], 5)
        assert statespace.skip_ratio(buckets) > 0.5

    @pytest.mark.parametrize("seed", range(2))
    def test_search_matches_oracle(self, seed):
        g = labeled_random_graph(14, 0.3, num_labels=6, seed=seed)
        got = keyword_search(
            g, [0, 1, 2, 3], 5, collect_workload_stats=False
        ).minimal
        assert got == minimal_keyword_covers(g, [0, 1, 2, 3], 5)


class TestSingleKeyword:
    def test_minimal_covers_are_single_vertices(self):
        g = labeled_random_graph(14, 0.3, num_labels=3, seed=4)
        got = keyword_search(
            g, [0], 3, collect_workload_stats=False
        ).minimal
        labeled_vertices = {
            frozenset({v}) for v in g.vertices() if g.label(v) == 0
        }
        assert got == labeled_vertices
