"""Tests for unconstrained QC mining (plain vs fused) and the ESU tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.quasicliques import (
    mine_quasi_cliques,
    mine_quasi_cliques_fused,
    quasi_clique_feasible,
)
from repro.baselines.naive import all_quasi_cliques, connected_vertex_sets
from repro.graph import erdos_renyi, graph_from_edges
from repro.mining.subsets import count_connected_sets, explore_connected_sets

from conftest import graph_strategy


class TestESU:
    @pytest.mark.parametrize("seed", range(4))
    def test_counts_match_oracle(self, seed):
        g = erdos_renyi(12, 0.3, seed=seed)
        assert count_connected_sets(g, 5) == len(
            connected_vertex_sets(g, 1, 5)
        )

    def test_each_set_exactly_once(self):
        g = erdos_renyi(10, 0.4, seed=7)
        seen = []

        def visit(current):
            seen.append(frozenset(current))
            return True

        explore_connected_sets(g, 4, visit)
        assert len(seen) == len(set(seen))
        assert set(seen) == set(connected_vertex_sets(g, 1, 4))

    def test_sets_are_connected(self):
        g = erdos_renyi(10, 0.3, seed=8)

        def visit(current):
            assert g.is_connected_subset(current)
            return True

        explore_connected_sets(g, 4, visit)

    def test_pruning_cuts_branch(self):
        g = graph_from_edges([(0, 1), (1, 2), (2, 3)])
        visited = []

        def visit(current):
            visited.append(tuple(sorted(current)))
            return len(current) < 2  # never grow past pairs

        explore_connected_sets(g, 4, visit)
        assert all(len(s) <= 2 for s in visited)

    def test_max_size_one(self):
        g = erdos_renyi(5, 0.5, seed=0)
        assert count_connected_sets(g, 1) == 5

    def test_invalid_max_size(self):
        with pytest.raises(ValueError):
            explore_connected_sets(
                erdos_renyi(3, 0.5, seed=0), 0, lambda s: True
            )

    @given(graph_strategy(max_vertices=9), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_property_counts(self, g, max_size):
        assert count_connected_sets(g, max_size) == len(
            connected_vertex_sets(g, 1, max_size)
        )


class TestQuasiCliqueMining:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("gamma", [0.6, 0.8])
    def test_plain_matches_oracle(self, seed, gamma):
        g = erdos_renyi(14, 0.45, seed=seed)
        got = mine_quasi_cliques(g, gamma, 5).all_sets()
        assert got == all_quasi_cliques(g, gamma, 3, 5)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("gamma", [0.6, 0.8])
    def test_fused_matches_plain(self, seed, gamma):
        g = erdos_renyi(14, 0.45, seed=seed)
        plain = mine_quasi_cliques(g, gamma, 5)
        fused = mine_quasi_cliques_fused(g, gamma, 5)
        assert plain.all_sets() == fused.all_sets()
        for size in plain.by_size:
            assert plain.by_size[size] == fused.by_size.get(size, set())

    def test_fused_promotions_counted(self):
        g = erdos_renyi(16, 0.5, seed=2)
        fused = mine_quasi_cliques_fused(g, 0.6, 5)
        assert fused.stats.promotions > 0

    def test_result_accessors(self):
        g = erdos_renyi(14, 0.5, seed=3)
        result = mine_quasi_cliques(g, 0.8, 4)
        assert result.count == len(result.all_sets())
        assert all(
            len(s) == size
            for size, group in result.by_size.items()
            for s in group
        )


class TestFeasibility:
    def test_feasible_when_degrees_suffice(self):
        # a triangle can grow into a 4-clique if outside degrees allow
        assert quasi_clique_feasible([2, 2, 2], [3, 3, 3], 3, 6, 0.8)

    def test_infeasible_when_isolated(self):
        # one vertex has no reachable outside neighbors and too-low degree
        assert not quasi_clique_feasible([1, 2, 2], [0, 3, 3], 3, 6, 0.8)

    def test_safety_against_oracle(self):
        """No set on a growth path to a quasi-clique is ever pruned."""
        for seed in range(3):
            g = erdos_renyi(12, 0.5, seed=seed)
            want = all_quasi_cliques(g, 0.8, 3, 5)
            got = mine_quasi_cliques_fused(g, 0.8, 5).all_sets()
            assert got == want
