"""Chaos suite: schedulers under deterministic fault injection.

The acceptance properties of the fault-tolerance layer:

* **Determinism under retry** — a run with injected worker crashes
  (including real killed worker processes) plus retries produces the
  exact match multiset of a clean serial run, on every scheduler.
* **Degradation contract** — ``on_failure="degrade"`` never raises on
  exhausted retries; it returns a merged result with ``incomplete``
  set and the unprocessed roots listed.
* **Raise-mode fidelity** — terminal failures surface with their
  original exception class, including across the process boundary.
* **Budget propagation** — shards are dispatched with the residual
  run budget, so a run with ``time_limit=T`` cannot burn a fresh
  ``T`` per dispatch round.

The chaos-smoke CI job runs this file per scheduler; set
``REPRO_CHAOS_SCHEDULERS`` to a comma-separated subset to restrict
the parametrization (defaults to all three).
"""

import multiprocessing
import os
import time

import pytest

from repro.core import maximality_constraints
from repro.core.runtime import ContigraEngine, ContigraJob
from repro.errors import TimeLimitExceeded
from repro.exec import (
    FaultPlan,
    InjectedFault,
    ProcessShardScheduler,
    RetryPolicy,
    SerialScheduler,
    TaskContext,
    WorkQueueScheduler,
    make_scheduler,
)
from repro.graph import erdos_renyi
from repro.patterns import quasi_clique_patterns_up_to

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

SCHEDULERS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_CHAOS_SCHEDULERS", "serial,process,workqueue"
    ).split(",")
    if name.strip()
)

#: Fast policy for tests: retries without meaningful sleeps.
FAST = RetryPolicy(max_retries=2, backoff_base=0.001, backoff_max=0.005)


def mqc_constraints(gamma=0.7, max_size=4):
    return maximality_constraints(
        quasi_clique_patterns_up_to(max_size, gamma), induced=True
    )


def match_multiset(result):
    return sorted(
        (pattern.structure_key(), tuple(assignment))
        for pattern, assignment in result.valid
    )


def engine_for(graph, **options):
    return ContigraEngine(graph, mqc_constraints(), **options)


def build_scheduler(name, **kwargs):
    if name == "serial":
        return SerialScheduler(**kwargs)
    if name == "process":
        return ProcessShardScheduler(n_workers=2, **kwargs)
    return WorkQueueScheduler(n_workers=3, **kwargs)


class TestDeterminismUnderCrashRetry:
    """Injected crashes + retries == clean serial run, every scheduler."""

    @pytest.mark.parametrize("name", SCHEDULERS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_crash_then_retry_matches_clean_run(self, name, seed):
        graph = erdos_renyi(10 + seed, 0.45, seed=seed)
        reference = match_multiset(
            engine_for(graph).run_with(SerialScheduler())
        )
        # Crash the shard(s) owning three different roots on their
        # first dispatch; retries must recover every one of them.
        plan = FaultPlan(seed=seed)
        for root in (0, 3, 7):
            plan.crash(root, times=1)
        chaotic = engine_for(graph).run_with(
            build_scheduler(name, retry=FAST, fault_plan=plan)
        )
        assert match_multiset(chaotic) == reference
        assert not getattr(chaotic, "incomplete", False)

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    @pytest.mark.skipif(
        "process" not in SCHEDULERS, reason="process scheduler excluded"
    )
    def test_killed_worker_process_recovers(self):
        """A real worker-process death (BrokenProcessPool), not a
        simulated raise: the shard is re-dispatched on a fresh pool and
        the final result is serial-identical."""
        graph = erdos_renyi(12, 0.45, seed=5)
        reference = match_multiset(
            engine_for(graph).run_with(SerialScheduler())
        )
        plan = FaultPlan().kill(0, times=1)
        result = engine_for(graph).run_with(
            ProcessShardScheduler(n_workers=2, retry=FAST, fault_plan=plan)
        )
        assert match_multiset(result) == reference
        assert not getattr(result, "incomplete", False)

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_retry_split_still_exact(self, name):
        """Two consecutive crashes force a shard split (second attempt
        runs half-shards); the merged result must still be exact."""
        graph = erdos_renyi(12, 0.45, seed=9)
        reference = match_multiset(
            engine_for(graph).run_with(SerialScheduler())
        )
        plan = FaultPlan().crash(2, times=2)
        result = engine_for(graph).run_with(
            build_scheduler(name, retry=FAST, fault_plan=plan)
        )
        assert match_multiset(result) == reference


class TestDegradedMode:
    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_exhausted_retries_degrade_with_roots_listed(self, name):
        """A permanently-failing root degrades the run instead of
        aborting it: the result is flagged incomplete and lists what
        was never mined."""
        graph = erdos_renyi(12, 0.45, seed=3)
        plan = FaultPlan().crash(4, times=50)  # outlives any retry
        result = engine_for(graph).run_with(
            build_scheduler(
                name, retry=FAST, on_failure="degrade", fault_plan=plan
            )
        )
        assert result.incomplete
        assert 4 in result.unprocessed_roots
        assert any(
            "InjectedFault" in reason for reason in result.failure_reasons
        )

    def test_workqueue_degrade_keeps_healthy_roots(self):
        """Per-root recovery: only the poisoned root is lost; every
        match not involving it survives in the partial result."""
        graph = erdos_renyi(12, 0.45, seed=3)
        reference = engine_for(graph).run_with(SerialScheduler())
        plan = FaultPlan().crash(4, times=50)
        result = engine_for(graph).run_with(
            WorkQueueScheduler(
                n_workers=3,
                retry=FAST,
                on_failure="degrade",
                fault_plan=plan,
            )
        )
        assert result.incomplete
        got = set(match_multiset(result))
        want = set(match_multiset(reference))
        assert got <= want
        unharmed = {
            m for m in want
            if not any(
                root in m[1] for root in result.unprocessed_roots
            )
        }
        assert unharmed <= got

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_degrade_without_faults_is_complete(self, name):
        """The degrade knob alone must not change a healthy run."""
        graph = erdos_renyi(10, 0.45, seed=6)
        reference = match_multiset(
            engine_for(graph).run_with(SerialScheduler())
        )
        result = engine_for(graph).run_with(
            build_scheduler(name, retry=FAST, on_failure="degrade")
        )
        assert match_multiset(result) == reference
        assert not result.incomplete
        assert result.unprocessed_roots == []


class TestRaiseModeFidelity:
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    @pytest.mark.skipif(
        "process" not in SCHEDULERS, reason="process scheduler excluded"
    )
    def test_worker_tle_class_survives_process_boundary(self):
        """An exhaust fault raises TimeLimitExceeded *inside the worker
        process*; raise mode must surface that exact class (terminal —
        never retried), not a pickling shim or a generic failure."""
        graph = erdos_renyi(12, 0.45, seed=2)
        plan = FaultPlan().exhaust(1)
        with pytest.raises(TimeLimitExceeded):
            engine_for(graph).run_with(
                ProcessShardScheduler(
                    n_workers=2, retry=FAST, fault_plan=plan
                )
            )

    @pytest.mark.parametrize("name", SCHEDULERS)
    def test_exhausted_retries_raise_transient_type(self, name):
        graph = erdos_renyi(10, 0.45, seed=1)
        plan = FaultPlan().crash(0, times=50)
        with pytest.raises(InjectedFault):
            engine_for(graph).run_with(
                build_scheduler(name, retry=FAST, fault_plan=plan)
            )

    def test_budget_failure_preferred_over_secondary_errors(self):
        """Satellite fix: the work-queue run raises the budget
        violation, not whichever cancellation-induced failure happened
        to land first; the rest stay attached."""
        graph = erdos_renyi(60, 0.4, seed=3)
        engine = engine_for(graph, time_limit=0.02)
        with pytest.raises(TimeLimitExceeded) as info:
            engine.run_with(WorkQueueScheduler(n_workers=3))
        assert hasattr(info.value, "suppressed_failures")


class TestPoisonedFinish:
    def test_tle_survives_poisoned_session_finish(self):
        """Satellite fix: ``session.finish()`` raising in the worker's
        cleanup path must not mask the original budget error."""
        graph = erdos_renyi(60, 0.4, seed=3)
        engine = engine_for(graph, time_limit=0.02)

        class PoisonedSession:
            def __init__(self, inner):
                self._inner = inner

            def run_roots(self, roots):
                return self._inner.run_roots(roots)

            def finish(self):
                raise RuntimeError("poisoned finish")

        class PoisonedJob(ContigraJob):
            def worker_session(self, ctx):
                return PoisonedSession(super().worker_session(ctx))

        scheduler = WorkQueueScheduler(n_workers=3)
        with pytest.raises(TimeLimitExceeded) as info:
            scheduler.run(
                PoisonedJob(engine),
                ctx=TaskContext.create(time_limit=engine.time_limit),
            )
        # The masked finish() errors are preserved as secondaries.
        suppressed = getattr(info.value, "suppressed_failures", ())
        assert any(
            isinstance(exc, RuntimeError) for exc in suppressed
        )


class TestBudgetPropagation:
    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    def test_sharded_run_cannot_burn_double_budget(self):
        """Regression for the ~2T blowup: a sharded run with
        ``time_limit=T`` must not grant each shard a fresh ``T`` on
        top of parent-side setup.  Slow dispatch (injected delay) eats
        into the shard deadline instead of extending the run."""
        graph = erdos_renyi(60, 0.4, seed=3)
        limit = 0.15
        engine = engine_for(graph, time_limit=limit)
        plan = FaultPlan().delay(0, seconds=limit / 2).delay(
            1, seconds=limit / 2
        )
        start = time.monotonic()
        with pytest.raises(TimeLimitExceeded) as info:
            engine.run_with(
                ProcessShardScheduler(n_workers=2, fault_plan=plan)
            )
        wall = time.monotonic() - start
        # The worker's own deadline is the *residual*, strictly under
        # the configured limit.
        assert info.value.limit_seconds <= limit
        # Generous pool-spawn allowance, but nowhere near 2T + spawn:
        # without residual propagation this run burns ~2T of mining
        # after ~T/2 of injected delay.
        assert wall < 2 * limit + 1.0

    def test_exhausted_parent_budget_skips_dispatch(self):
        """Retry rounds check the residual before dispatching: once
        the parent budget is spent, pending shards fail with TLE
        instead of launching doomed workers."""
        graph = erdos_renyi(12, 0.45, seed=4)
        engine = engine_for(graph)
        ctx = TaskContext.create(time_limit=0.0001)
        time.sleep(0.01)  # burn the whole budget before dispatch
        with pytest.raises(TimeLimitExceeded):
            ProcessShardScheduler(n_workers=2).run(
                ContigraJob(engine), ctx=ctx
            )

    def test_degraded_run_reports_budget_reason(self):
        graph = erdos_renyi(12, 0.45, seed=4)
        engine = engine_for(graph)
        ctx = TaskContext.create(time_limit=0.0001)
        time.sleep(0.01)
        result = ProcessShardScheduler(
            n_workers=2, on_failure="degrade"
        ).run(ContigraJob(engine), ctx=ctx)
        assert result.incomplete
        assert result.unprocessed_roots == sorted(engine.all_roots())
        assert any(
            "TimeLimitExceeded" in reason
            for reason in result.failure_reasons
        )


class TestMakeSchedulerKnobs:
    def test_retries_builds_default_policy(self):
        scheduler = make_scheduler("process", retries=3)
        assert scheduler.retry is not None
        assert scheduler.retry.max_retries == 3

    def test_zero_retries_means_no_policy(self):
        assert make_scheduler("process", retries=0).retry is None

    def test_explicit_policy_wins(self):
        policy = RetryPolicy(max_retries=7)
        scheduler = make_scheduler("workqueue", retry=policy, retries=1)
        assert scheduler.retry is policy

    def test_on_failure_validated(self):
        for name in ("serial", "process", "workqueue"):
            with pytest.raises(ValueError):
                make_scheduler(name, on_failure="explode")


class TestSharedSegmentReclamation:
    """Shared-memory graph segments survive worker deaths and are
    reclaimed by the owning process, never leaked (tentpole lifecycle
    contract of ``repro.graph.shm``)."""

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    @pytest.mark.skipif(
        "process" not in SCHEDULERS, reason="process scheduler excluded"
    )
    def test_killed_worker_leaves_segment_reclaimable(self):
        from multiprocessing import shared_memory

        from repro.graph.shm import (
            published_segment,
            shared_graphs,
            shm_counters,
            unpublish_all,
        )
        from repro.graph.store import graph_store, reset_default_store

        graph = erdos_renyi(12, 0.45, seed=5, name="chaos-shared")
        reference = match_multiset(
            engine_for(graph).run_with(SerialScheduler())
        )
        graph_store().register(graph)
        try:
            before = shm_counters()
            plan = FaultPlan().kill(0, times=1)
            result = engine_for(graph).run_with(
                ProcessShardScheduler(
                    n_workers=2, retry=FAST, fault_plan=plan
                )
            )
            # The run published the registered graph and survived the
            # worker death with the exact serial result.
            assert match_multiset(result) == reference
            after = shm_counters()
            assert after["publishes"] == before["publishes"] + 1
            # Run-scoped leasing: the scheduler released its lease at
            # merge time and the last release unlinked the segment —
            # a dead worker's attachment cannot pin it, and there is
            # nothing left for the exit hooks to reclaim.
            shared_graphs().release_attachments()
            assert published_segment(graph.fingerprint) is None
            assert after["unlinks"] == before["unlinks"] + 1
            assert unpublish_all() == 0
        finally:
            unpublish_all()
            reset_default_store()

    @pytest.mark.skipif(not HAS_FORK, reason="fork start method required")
    @pytest.mark.skipif(
        "process" not in SCHEDULERS, reason="process scheduler excluded"
    )
    def test_no_segment_leak_across_sequential_runs(self):
        """N sequential in-process runs leave zero published segments
        behind — the daemon-lifetime contract: each run's lease release
        reclaims its segment instead of waiting for atexit."""
        from repro.graph.shm import (
            published_segment,
            shm_counters,
            unpublish_all,
        )
        from repro.graph.store import graph_store, reset_default_store

        graph = erdos_renyi(12, 0.45, seed=7, name="chaos-sequential")
        graph_store().register(graph)
        try:
            before = shm_counters()
            for _ in range(3):
                engine_for(graph).run_with(
                    ProcessShardScheduler(n_workers=2, retry=FAST)
                )
                assert published_segment(graph.fingerprint) is None
            after = shm_counters()
            assert after["publishes"] == before["publishes"] + 3
            assert after["unlinks"] == before["unlinks"] + 3
            assert after["releases"] == before["releases"] + 3
            assert unpublish_all() == 0
        finally:
            unpublish_all()
            reset_default_store()
