"""Tests for ``repro.serve``: the mining daemon and its bug sweep.

Covers the intake pipeline unit by unit (token buckets, tenant
config, the CG6xx admission gate), then the daemon end to end over
real sockets: lifecycle, the graph registry endpoints, streamed and
aggregate queries, concurrent tenants, rate limiting, strict
admission rejection, mid-stream disconnect cancellation, per-tenant
metrics, and the long-lived-process regressions (no metric carry-over
and no shared-memory leak across sequential in-process runs).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.apps.mqc import build_mqc_engine
from repro.graph import erdos_renyi
from repro.graph.store import graph_store, reset_default_store
from repro.serve import (
    ServeConfig,
    TenantConfig,
    TokenBucket,
    admit_query,
    serve_in_thread,
)
from repro.serve.client import ServeClient, ServeError

SMOKE_EDGES = [
    (0, 1), (1, 2), (0, 2),
    (2, 3), (3, 4), (2, 4),
    (4, 5),
]


@pytest.fixture(autouse=True)
def clean_store():
    reset_default_store()
    yield
    reset_default_store()


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ----------------------------------------------------------------------
# Units: rate limiting, config, admission
# ----------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_deny_with_retry_after(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_acquire(now=100.0) == (True, 0.0)
        assert bucket.try_acquire(now=100.0) == (True, 0.0)
        granted, retry = bucket.try_acquire(now=100.0)
        assert not granted
        assert retry == pytest.approx(1.0)

    def test_refill_restores_capacity_up_to_burst(self):
        bucket = TokenBucket(rate=2.0, burst=3)
        for _ in range(3):
            assert bucket.try_acquire(now=50.0)[0]
        assert not bucket.try_acquire(now=50.0)[0]
        # 1 second at rate 2 refills two tokens; a century caps at burst.
        assert bucket.try_acquire(now=51.0)[0]
        assert bucket.try_acquire(now=51.0)[0]
        assert not bucket.try_acquire(now=51.0)[0]
        for _ in range(3):
            assert bucket.try_acquire(now=5000.0)[0]
        assert not bucket.try_acquire(now=5000.0)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    def test_request_above_burst_is_never_grantable(self):
        # Regression: a cost above burst used to come back with a
        # finite retry-after, sending well-behaved clients into an
        # endless retry loop.  It must be the explicit (False, inf)
        # never-grantable signal instead.
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_acquire(tokens=3.0, now=100.0) == (
            False, float("inf"),
        )
        # ... and the refusal consumed nothing: a full-burst request
        # still succeeds immediately.
        assert bucket.try_acquire(tokens=2.0, now=100.0) == (True, 0.0)


class TestServeConfig:
    def test_for_tenant_falls_back_to_default_policy(self):
        config = ServeConfig(
            tenants={"alice": TenantConfig("alice", rate=2.0, priority=5)},
            default=TenantConfig("default", rate=7.0, burst=9),
        )
        assert config.for_tenant("alice").priority == 5
        anon = config.for_tenant("bob")
        assert (anon.name, anon.rate, anon.burst) == ("bob", 7.0, 9)

    def test_from_dict_round_trip_and_validation(self):
        config = ServeConfig.from_dict(
            {
                "default": {"rate": 4.0},
                "tenants": {"t1": {"rate": 1.0, "burst": 1, "priority": -2}},
                "max_concurrent": 3,
                "admission": "warn",
            }
        )
        assert config.max_concurrent == 3
        assert config.admission == "warn"
        assert config.for_tenant("t1").priority == -2
        with pytest.raises(ValueError):
            ServeConfig(admission="sometimes")
        with pytest.raises(ValueError):
            TenantConfig.from_dict("x", {"rate": 1.0, "color": "red"})

    def test_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"default": {"rate": 3.0}}))
        config = ServeConfig.from_file(str(path), max_concurrent=4)
        assert config.default.rate == 3.0
        assert config.max_concurrent == 4


class TestAdmission:
    def _constraints(self):
        from repro.core import maximality_constraints
        from repro.patterns import quasi_clique_patterns_up_to

        return maximality_constraints(
            quasi_clique_patterns_up_to(4, 0.8), induced=True
        )

    def test_off_admits_unconditionally(self):
        graph = erdos_renyi(20, 0.3, seed=1)
        decision = admit_query(graph, self._constraints(), "off")
        assert decision.admitted
        assert decision.codes == []

    def test_strict_rejects_projected_tle_with_cg601(self):
        graph = erdos_renyi(40, 0.4, seed=2)
        decision = admit_query(
            graph, self._constraints(), "strict", budget_seconds=1e-12
        )
        assert not decision.admitted
        assert "CG601" in decision.codes
        payload = decision.to_dict()
        assert payload["admitted"] is False
        assert payload["projected_seconds"] >= 0

    def test_warn_annotates_but_admits(self):
        graph = erdos_renyi(40, 0.4, seed=2)
        decision = admit_query(
            graph, self._constraints(), "warn", budget_seconds=1e-12
        )
        assert decision.admitted
        assert "CG601" in decision.codes


# ----------------------------------------------------------------------
# Daemon end-to-end
# ----------------------------------------------------------------------


def _daemon(**kwargs):
    kwargs.setdefault("admission", "warn")
    kwargs.setdefault("port", 0)
    return serve_in_thread(ServeConfig(**kwargs))


class TestDaemonLifecycle:
    def test_start_serve_drain_shutdown(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            health = client.health()
            assert health["status"] == "ok"
            assert health["max_concurrent"] == 2
            client.register_graph("tiny", edges=SMOKE_EDGES, num_vertices=6)
            result = client.query(
                tenant="t", graph="tiny", gamma=0.8, max_size=4
            )
            assert result["type"] == "result"
            assert result["summary"]["status"] == "ok"
            assert client.shutdown()["status"] == "draining"
        finally:
            handle.stop()
        assert not handle.thread.is_alive()
        # The socket is gone after shutdown.
        with pytest.raises(OSError):
            ServeClient(handle.host, handle.port, timeout=2.0).health()

    def test_registry_endpoints_and_version_addressing(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            client.register_graph("g", edges=SMOKE_EDGES, num_vertices=6)
            client.mutate_graph("g", add_edges=[[0, 5], [1, 5]])
            graphs = client.graphs()
            refs = {entry["ref"] for entry in graphs}
            assert {"g@v1", "g@v2"} <= refs
            latest = [e for e in graphs if e.get("latest")]
            assert any(e["ref"] == "g@v2" for e in latest)
            # Old and new versions both resolvable by queries.
            v1 = client.query(tenant="t", graph="g@v1", max_size=3)
            v2 = client.query(tenant="t", graph="g@latest", max_size=3)
            assert v1["summary"]["status"] == "ok"
            assert v2["summary"]["status"] == "ok"
        finally:
            handle.stop()

    def test_error_paths(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            with pytest.raises(ServeError) as err:
                client.query(tenant="t", graph="missing")
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                client.register_graph("dual", dataset="dblp",
                                      edges=[], num_vertices=0)
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.query(tenant="t", graph="x", scheduler="quantum")
            assert err.value.status == 400
            with pytest.raises(ServeError) as err:
                client.mutate_graph("nope", add_edges=[[0, 1]])
            assert err.value.status == 404
            status, _ = client._request("GET", "/nope")
            assert status == 404
            status, _ = client._request("DELETE", "/graphs")
            assert status == 405
        finally:
            handle.stop()


class TestStreaming:
    def test_streamed_matches_arrive_incrementally(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            client.register_graph("tiny", edges=SMOKE_EDGES, num_vertices=6)
            events = list(
                client.stream_query(tenant="t", graph="tiny", max_size=4)
            )
            assert events[0]["type"] == "accepted"
            assert events[0]["admission"]["mode"] == "warn"
            matches = [e for e in events if e["type"] == "match"]
            summary = events[-1]
            assert summary["type"] == "summary"
            assert summary["status"] == "ok"
            assert summary["matches"] == len(matches) > 0
            for match in matches:
                assert isinstance(match["vertices"], list)
        finally:
            handle.stop()

    def test_two_concurrent_tenant_queries_both_stream(self):
        handle = _daemon(max_concurrent=2)
        try:
            client = ServeClient(handle.host, handle.port)
            graph = erdos_renyi(30, 0.4, seed=7)
            store = graph_store()
            store.register(graph, "shared")
            outcomes = {}

            def run(tenant):
                local = ServeClient(handle.host, handle.port, timeout=120.0)
                events = list(
                    local.stream_query(
                        tenant=tenant, graph="shared", max_size=4,
                        time_limit=120.0,
                    )
                )
                outcomes[tenant] = events

            threads = [
                threading.Thread(target=run, args=(name,))
                for name in ("alice", "bob")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120.0)
            assert set(outcomes) == {"alice", "bob"}
            for tenant, events in outcomes.items():
                assert events[0]["type"] == "accepted", tenant
                assert events[-1]["status"] == "ok", tenant
                assert events[-1]["matches"] > 0, tenant
            metrics = client.metrics()
            assert 'repro_serve_queries_total{tenant="alice"} 1' in metrics
            assert 'repro_serve_queries_total{tenant="bob"} 1' in metrics
        finally:
            handle.stop()


class TestRateLimiting:
    def test_second_query_hits_429_with_retry_after(self):
        handle = serve_in_thread(
            ServeConfig(
                tenants={
                    "slow": TenantConfig("slow", rate=0.001, burst=1)
                },
                admission="off",
                port=0,
            )
        )
        try:
            client = ServeClient(handle.host, handle.port)
            client.register_graph("tiny", edges=SMOKE_EDGES, num_vertices=6)
            first = client.query(tenant="slow", graph="tiny", max_size=3)
            assert first["summary"]["status"] == "ok"
            with pytest.raises(ServeError) as err:
                client.query(tenant="slow", graph="tiny", max_size=3)
            assert err.value.status == 429
            assert err.value.payload["retry_after_seconds"] > 0
            # Other tenants are unaffected (separate buckets).
            other = client.query(tenant="fast", graph="tiny", max_size=3)
            assert other["summary"]["status"] == "ok"
            metrics = client.metrics()
            assert (
                'repro_serve_rate_limited_total{tenant="slow"} 1' in metrics
            )
        finally:
            handle.stop()


class TestAdmissionRejection:
    def test_strict_rejection_carries_cg601_diagnostic(self):
        handle = _daemon(admission="strict")
        try:
            client = ServeClient(handle.host, handle.port)
            graph = erdos_renyi(40, 0.4, seed=3)
            graph_store().register(graph, "big")
            with pytest.raises(ServeError) as err:
                client.query(
                    tenant="t", graph="big", max_size=4, time_limit=1e-12
                )
            assert err.value.status == 422
            admission = err.value.payload["admission"]
            assert admission["admitted"] is False
            assert "CG601" in admission["codes"]
            assert any(
                d.get("code") == "CG601" for d in admission["diagnostics"]
            )
            metrics = client.metrics()
            assert (
                'repro_serve_admission_rejected_total{tenant="t"} 1'
                in metrics
            )
            # Per-query override can downgrade to warn and proceed.
            ok = client.query(
                tenant="t", graph="big", max_size=3,
                time_limit=60.0, admission="warn",
            )
            assert ok["summary"]["status"] == "ok"
        finally:
            handle.stop()


class TestDisconnectCancellation:
    def test_mid_stream_disconnect_cancels_the_run(self):
        handle = _daemon(max_concurrent=1, admission="off")
        try:
            client = ServeClient(handle.host, handle.port, timeout=120.0)
            # ~5s of serial mining if left alone: far longer than the
            # drain window below, so an empty slot proves cancellation.
            graph = erdos_renyi(80, 0.4, seed=7)
            graph_store().register(graph, "slow")
            stream = client.stream_query(
                tenant="t", graph="slow", max_size=5, time_limit=120.0
            )
            first = next(stream)
            assert first["type"] == "accepted"
            # Wait for the run to occupy the worker slot, then vanish.
            assert wait_until(lambda: len(handle.daemon._active) == 1)
            stream.close()
            assert wait_until(
                lambda: len(handle.daemon._active) == 0, timeout=20.0
            ), "run was not cancelled after client disconnect"
            # The daemon is still healthy and the slot is reusable.
            client.register_graph("tiny", edges=SMOKE_EDGES, num_vertices=6)
            result = client.query(tenant="t", graph="tiny", max_size=3)
            assert result["summary"]["status"] == "ok"
        finally:
            handle.stop()


class TestLongLivedProcessRegressions:
    def test_no_metric_carry_over_across_sequential_daemon_runs(self):
        """Acceptance: 3 identical sequential queries report identical
        per-run counters — nothing accumulates across runs."""
        handle = _daemon(admission="off")
        try:
            client = ServeClient(handle.host, handle.port)
            graph = erdos_renyi(24, 0.4, seed=11)
            graph_store().register(graph, "g")
            summaries = [
                client.query(tenant="t", graph="g", max_size=4)["summary"]
                for _ in range(3)
            ]
            baseline = summaries[0]["counters"]
            assert baseline["matches_found"] > 0
            for later in summaries[1:]:
                assert later["counters"] == baseline
            # Shared-memory lease accounting: the serial scheduler never
            # publishes, and nothing leaks between runs.
            for summary in summaries:
                shm = summary["run"]["shared_graphs"]
                assert shm["publishes"] == 0
                assert shm["unlinks"] == 0
        finally:
            handle.stop()

    def test_engine_run_twice_in_process_has_fresh_stats(self):
        """Regression for the cross-run accumulation bug: a second
        ``ContigraEngine.run()`` on the same engine instance used to
        inherit the first run's counters."""
        graph = erdos_renyi(20, 0.4, seed=5)
        engine = build_mqc_engine(graph, 0.8, 4)
        first = engine.run()
        second = engine.run()
        assert first.stats.as_dict() == second.stats.as_dict()
        assert second.stats.matches_found > 0
        assert len(first.valid) == len(second.valid)

    def test_match_sink_streams_every_valid_match(self):
        graph = erdos_renyi(20, 0.4, seed=5)
        engine = build_mqc_engine(graph, 0.8, 4)
        streamed = []
        result = engine.run(
            match_sink=lambda pattern, vs: streamed.append((pattern, vs))
        )
        assert streamed == result.valid


# ----------------------------------------------------------------------
# Intake validation: never-grantable costs and malformed mutations
# ----------------------------------------------------------------------


class TestIntakeValidation:
    def test_cost_above_burst_is_400_not_429(self):
        handle = serve_in_thread(
            ServeConfig(
                tenants={"t": TenantConfig("t", rate=1.0, burst=2)},
                admission="off",
                port=0,
            )
        )
        try:
            client = ServeClient(handle.host, handle.port)
            client.register_graph("tiny", edges=SMOKE_EDGES, num_vertices=6)
            with pytest.raises(ServeError) as err:
                client.query(tenant="t", graph="tiny", max_size=3, cost=5)
            # Waiting cannot satisfy this request: 400, not 429.
            assert err.value.status == 400
            assert "never be granted" in err.value.payload["error"]
            assert "retry_after_seconds" not in err.value.payload
            # A grantable cost still works afterwards.
            ok = client.query(tenant="t", graph="tiny", max_size=3, cost=2)
            assert ok["summary"]["status"] == "ok"
            with pytest.raises(ServeError) as err:
                client.query(tenant="t", graph="tiny", max_size=3, cost=-1)
            assert err.value.status == 400
        finally:
            handle.stop()

    def test_malformed_mutation_payloads_get_field_level_400(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            client.register_graph("m", edges=SMOKE_EDGES, num_vertices=6)
            with pytest.raises(ServeError) as err:
                client.mutate_graph("m", add_vertices="3")
            assert err.value.status == 400
            assert "add_vertices" in err.value.payload["error"]
            with pytest.raises(ServeError) as err:
                client.mutate_graph("m", add_edges=[[0, 1.5]])
            assert err.value.status == 400
            assert "add_edges[0][1]" in err.value.payload["error"]
            with pytest.raises(ServeError) as err:
                client.mutate_graph("m", add_vertices=-2)
            assert err.value.status == 400
            # The graph is untouched by the rejected payloads.
            assert all(
                e["ref"] == "m@v1"
                for e in client.graphs() if e["name"] == "m"
            )
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# Standing queries over the wire
# ----------------------------------------------------------------------


class TestSubscriptions:
    def test_round_trip_subscribe_mutate_stream_disconnect(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port, timeout=120.0)
            graph = erdos_renyi(20, 0.3, seed=9)
            graph_store().register(graph, "dyn")
            n = graph.num_vertices
            assert client.subscriptions() == []

            stream = client.subscribe(
                tenant="alice", graph="dyn", gamma=0.8, max_size=4
            )
            subscribed = next(stream)
            assert subscribed["type"] == "subscribed"
            sub_id = subscribed["subscription"]
            assert subscribed["matches"] >= 0
            assert subscribed["radius"] >= 3
            listed = client.subscriptions()
            assert [s["id"] for s in listed] == [sub_id]
            assert listed[0]["tenant"] == "alice"
            assert client.health()["subscriptions"] == 1

            # A disjoint appended triangle must arrive as match_added
            # followed by the delta summary.
            client.mutate_graph(
                "dyn",
                add_vertices=3,
                add_edges=[[n, n + 1], [n, n + 2], [n + 1, n + 2]],
            )
            events = []
            for event in stream:
                events.append(event)
                if event["type"] == "delta":
                    break
            added = [e for e in events if e["type"] == "match_added"]
            assert any(
                sorted(e["vertices"]) == [n, n + 1, n + 2] for e in added
            )
            delta = events[-1]
            assert delta["subscription"] == sub_id
            assert delta["mode"] == "delta"
            assert delta["frontier"] == 3

            metrics = client.metrics()
            assert (
                'repro_serve_subscriptions_total{tenant="alice"} 1'
                in metrics
            )
            assert "repro_serve_delta_events_total" in metrics

            # Disconnecting tears the subscription down server-side.
            stream.close()
            assert wait_until(
                lambda: len(handle.daemon.subscriptions) == 0, timeout=20.0
            ), "disconnect did not remove the subscription"
        finally:
            handle.stop()

    def test_explicit_unsubscribe_closes_the_stream(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port, timeout=120.0)
            graph = erdos_renyi(16, 0.3, seed=11)
            graph_store().register(graph, "dyn")
            stream = client.subscribe(tenant="t", graph="dyn", max_size=4)
            sub_id = next(stream)["subscription"]
            assert client.unsubscribe(sub_id)["unsubscribed"] == sub_id
            tail = list(stream)
            assert tail and tail[-1]["type"] == "closed"
            assert client.subscriptions() == []
            with pytest.raises(ServeError) as err:
                client.unsubscribe("sub-999")
            assert err.value.status == 404
        finally:
            handle.stop()

    def test_subscribe_error_paths(self):
        handle = _daemon()
        try:
            client = ServeClient(handle.host, handle.port)
            with pytest.raises(ServeError) as err:
                next(client.subscribe(tenant="t", graph="missing"))
            assert err.value.status == 404
            with pytest.raises(ServeError) as err:
                next(
                    client.subscribe(
                        tenant="t", graph="x", scheduler="quantum"
                    )
                )
            assert err.value.status == 400
        finally:
            handle.stop()

    def test_daemon_shutdown_sends_closed_sentinel(self):
        handle = _daemon()
        client = ServeClient(handle.host, handle.port, timeout=120.0)
        graph = erdos_renyi(16, 0.3, seed=13)
        graph_store().register(graph, "dyn")
        stream = client.subscribe(tenant="t", graph="dyn", max_size=4)
        assert next(stream)["type"] == "subscribed"
        # Stopping with a live long-lived stream must not hang (the
        # sentinel unblocks the pump before the server close waits on
        # active handlers) and the client sees an orderly goodbye.
        handle.stop()
        tail = list(stream)
        assert any(e["type"] == "closed" for e in tail)
        assert not handle.thread.is_alive()
