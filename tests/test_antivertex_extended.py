"""Extended anti-vertex tests: oracle agreement on random graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import anti_vertex_query, lower_anti_vertices
from repro.baselines.naive import nested_query_matches
from repro.graph import erdos_renyi
from repro.patterns import Pattern


def wedge_anti():
    """Triangle 0-1-2 with anti-vertex 3 adjacent to 0 and 1."""
    return Pattern(
        4, [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)], anti_vertices=[3]
    )


def edge_double_anti():
    """Edge 0-1 with two anti-vertices: 2 adjacent to both endpoints,
    3 adjacent to 0 only."""
    return Pattern(
        4,
        [(0, 1), (0, 2), (1, 2), (0, 3)],
        anti_vertices=[2, 3],
    )


class TestLoweringSemantics:
    def test_multiple_anti_vertices_one_constraint_each(self):
        p_m, p_plus_list = lower_anti_vertices(edge_double_anti())
        assert p_m.num_vertices == 2
        assert len(p_plus_list) == 2
        sizes = sorted(p.num_vertices for p in p_plus_list)
        assert sizes == [3, 3]

    @pytest.mark.parametrize("seed", range(5))
    def test_oracle_agreement_wedge(self, seed):
        g = erdos_renyi(13, 0.25, seed=seed)
        p_m, p_plus_list = lower_anti_vertices(wedge_anti())
        got = set(anti_vertex_query(g, wedge_anti()).assignments())
        want = nested_query_matches(g, p_m, p_plus_list)
        assert got == want

    @pytest.mark.parametrize("seed", range(4))
    def test_oracle_agreement_double(self, seed):
        g = erdos_renyi(12, 0.25, seed=seed)
        p_m, p_plus_list = lower_anti_vertices(edge_double_anti())
        got = set(anti_vertex_query(g, edge_double_anti()).assignments())
        want = nested_query_matches(g, p_m, p_plus_list)
        assert got == want

    @given(st.integers(0, 10_000), st.floats(0.1, 0.4))
    @settings(max_examples=12, deadline=None)
    def test_property_no_realizable_anti_vertex(self, seed, p):
        """Every returned match genuinely has no data vertex completing
        the anti-vertex's edges."""
        g = erdos_renyi(12, p, seed=seed)
        result = anti_vertex_query(g, wedge_anti())
        for assignment in result.assignments():
            a, b = assignment[0], assignment[1]
            common = g.neighbor_set(a) & g.neighbor_set(b)
            # the only common neighbor may be the triangle's own apex
            assert common <= set(assignment)

    def test_semantics_vs_manual(self):
        # One triangle with an extra wedge-closer, one without.
        from repro.graph import graph_from_edges

        g = graph_from_edges(
            [
                (0, 1), (1, 2), (0, 2),      # triangle A
                (0, 3), (1, 3),              # vertex 3 closes A's 0-1 wedge
                (4, 5), (5, 6), (4, 6),      # triangle B, isolated
            ]
        )
        got = {
            frozenset(a)
            for a in anti_vertex_query(g, wedge_anti()).assignments()
        }
        # triangle A survives only via edges whose wedge has no closer:
        # pairs (0,1) have closer 3 -> those matches die; B survives fully.
        assert frozenset({4, 5, 6}) in got
