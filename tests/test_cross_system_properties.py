"""Cross-system property tests: the whole stack agrees with itself.

These are the highest-leverage invariants in the repository — every
engine, baseline, and oracle computing the same quantity must produce
the same answer on randomized inputs, across semantics and toggles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    keyword_search,
    maximal_quasi_cliques,
    mine_quasi_cliques,
    mine_quasi_cliques_fused,
    motif_counts,
    motif_counts_esu,
)
from repro.baselines import posthoc_mqc, tthinker_mqc
from repro.baselines.naive import (
    all_quasi_cliques,
    maximal_quasi_cliques as oracle_mqc,
    minimal_keyword_covers,
)
from repro.core.parallel import run_sharded
from repro.core import maximality_constraints
from repro.graph import erdos_renyi
from repro.patterns import quasi_clique_patterns_up_to

from conftest import labeled_random_graph


class TestFiveWayMQCAgreement:
    """Contigra, sharded Contigra, Peregrine+, TThinker, oracle."""

    @given(st.integers(0, 10_000), st.sampled_from([0.6, 0.7, 0.8]))
    @settings(max_examples=8, deadline=None)
    def test_all_systems_agree(self, seed, gamma):
        g = erdos_renyi(13, 0.45, seed=seed)
        want = oracle_mqc(g, gamma, 3, 5)
        assert maximal_quasi_cliques(g, gamma, 5).all_sets() == want
        assert posthoc_mqc(g, gamma, 5).valid == want
        assert tthinker_mqc(g, gamma, 5).maximal == want
        cs = maximality_constraints(
            quasi_clique_patterns_up_to(5, gamma), induced=True
        )
        sharded = run_sharded(g, cs, n_workers=2)
        assert set(sharded.vertex_sets()) == want


class TestQuasiCliqueInvariants:
    @given(st.integers(0, 10_000), st.sampled_from([0.6, 0.8]))
    @settings(max_examples=10, deadline=None)
    def test_maximal_is_antichain_of_all(self, seed, gamma):
        """Maximal QCs are QCs, mutually non-nested, and dominate."""
        g = erdos_renyi(13, 0.5, seed=seed)
        universe = all_quasi_cliques(g, gamma, 3, 5)
        maximal = maximal_quasi_cliques(g, gamma, 5).all_sets()
        assert maximal <= universe
        for a in maximal:
            for b in maximal:
                assert not (a < b)
        for candidate in universe:
            assert any(candidate <= m for m in maximal) or any(
                candidate < other for other in universe
            )

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_gamma_monotonicity(self, seed):
        """Raising gamma can only shrink the quasi-clique universe."""
        g = erdos_renyi(13, 0.5, seed=seed)
        loose = mine_quasi_cliques(g, 0.6, 5).all_sets()
        tight = mine_quasi_cliques(g, 0.8, 5).all_sets()
        assert tight <= loose

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_fused_equals_plain(self, seed):
        g = erdos_renyi(13, 0.5, seed=seed)
        assert (
            mine_quasi_cliques_fused(g, 0.7, 5).all_sets()
            == mine_quasi_cliques(g, 0.7, 5).all_sets()
        )


class TestKeywordSearchInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_minimal_covers_are_minimal_and_complete(self, seed):
        g = labeled_random_graph(12, 0.3, num_labels=4, seed=seed)
        keywords = frozenset({0, 1})
        got = keyword_search(
            g, keywords, 4, collect_workload_stats=False
        ).minimal
        want = minimal_keyword_covers(g, keywords, 4)
        assert got == want
        # pairwise non-nested
        for a in got:
            for b in got:
                assert not (a < b)

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_larger_budget_only_adds(self, seed):
        """Raising max_size can only add minimal covers (smaller ones
        stay minimal: minimality is judged against subsets only)."""
        g = labeled_random_graph(12, 0.3, num_labels=4, seed=seed)
        small = keyword_search(
            g, [0, 1], 3, collect_workload_stats=False
        ).minimal
        large = keyword_search(
            g, [0, 1], 4, collect_workload_stats=False
        ).minimal
        assert small <= large


class TestMotifInvariants:
    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_motif_methods_agree_and_total(self, seed):
        from repro.baselines.naive import connected_vertex_sets

        g = erdos_renyi(11, 0.35, seed=seed)
        a = motif_counts(g, 3)
        b = motif_counts_esu(g, 3)
        assert a == b
        assert sum(a.values()) == len(connected_vertex_sets(g, 3, 3))
