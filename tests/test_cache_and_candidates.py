"""Tests for the set-operation cache and candidate computation."""

import pytest

from repro.graph import erdos_renyi, graph_from_edges
from repro.mining import (
    MiningStats,
    SetOperationCache,
    TaskCache,
    compute_candidates,
    raw_intersection,
    root_candidates,
)
from repro.patterns import clique, path, plan_for, triangle

from conftest import labeled_random_graph


class TestSetOperationCache:
    def test_miss_then_hit(self):
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        key = frozenset({1, 2})
        assert cache.lookup(key) is None
        cache.store(key, frozenset({3}))
        assert cache.lookup(key) == frozenset({3})
        assert stats.cache_misses == 1
        assert stats.cache_hits == 1

    def test_disabled_cache_never_hits(self):
        stats = MiningStats()
        cache = SetOperationCache(stats=stats, enabled=False)
        key = frozenset({1})
        cache.store(key, frozenset({2}))
        assert cache.lookup(key) is None
        assert stats.cache_misses == 1

    def test_fifo_eviction(self):
        cache = SetOperationCache(max_entries=2)
        cache.store(frozenset({1}), frozenset())
        cache.store(frozenset({2}), frozenset())
        cache.store(frozenset({3}), frozenset())
        assert len(cache) == 2
        assert cache.lookup(frozenset({1})) is None
        assert cache.lookup(frozenset({3})) is not None

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SetOperationCache(max_entries=0)

    def test_clear(self):
        cache = SetOperationCache()
        cache.store(frozenset({1}), frozenset())
        cache.clear()
        assert len(cache) == 0


class TestTaskCache:
    def test_entries_per_step(self):
        tc = TaskCache(3)
        tc.set_entry(1, frozenset({5}), frozenset({6}))
        assert tc.entry(1) == (frozenset({5}), frozenset({6}))
        assert tc.entry(0) is None

    def test_clear_from(self):
        tc = TaskCache(3)
        for i in range(3):
            tc.set_entry(i, frozenset({i}), frozenset())
        tc.clear_from(1)
        assert tc.entry(0) is not None
        assert tc.entry(1) is None
        assert tc.entry(2) is None

    def test_utilization(self):
        tc = TaskCache(4)
        tc.set_entry(0, frozenset(), frozenset())
        tc.set_entry(2, frozenset(), frozenset())
        assert tc.utilization() == 0.5


class TestRawIntersection:
    def test_common_neighbors(self):
        from repro.graph import GraphBuilder

        builder = GraphBuilder()
        for v in range(5):
            builder.add_vertex(v)
        builder.add_edges([(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        g = builder.build()
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        assert raw_intersection(g, [0, 1], cache, stats) == {2, 3}

    def test_cached_second_time(self):
        g = erdos_renyi(15, 0.4, seed=0)
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        first = raw_intersection(g, [0, 1], cache, stats)
        intersections_after_first = stats.set_intersections
        second = raw_intersection(g, [1, 0], cache, stats)  # same key
        assert first == second
        assert stats.set_intersections == intersections_after_first
        assert stats.cache_hits == 1

    def test_empty_intersection_short_circuits(self):
        g = graph_from_edges([(0, 1), (2, 3)])
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        assert raw_intersection(g, [0, 2], cache, stats) == frozenset()


class TestComputeCandidates:
    def test_respects_adjacency(self):
        g = graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        plan = plan_for(triangle())
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        # bind position 0 to vertex 0; candidates for position 1 are
        # neighbors of 0 subject to symmetry bounds.
        candidates = compute_candidates(g, plan, 1, [0], cache, stats)
        assert set(candidates) <= set(g.neighbors(0))

    def test_symmetry_bounds_prune(self):
        g = graph_from_edges([(0, 1), (0, 2), (1, 2)])
        plan = plan_for(triangle())
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        with_bounds = compute_candidates(
            g, plan, 1, [2], cache, stats, apply_symmetry=True
        )
        without = compute_candidates(
            g, plan, 1, [2], cache, stats, apply_symmetry=False
        )
        assert set(with_bounds) <= set(without)

    def test_injectivity(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        plan = plan_for(path(2))
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        candidates = compute_candidates(
            g, plan, 2, [0, 1], cache, stats, apply_symmetry=False
        )
        assert 0 not in candidates and 1 not in candidates

    def test_label_filter(self):
        g = labeled_random_graph(12, 0.6, num_labels=2, seed=3)
        pattern = path(1).with_labels([None, 1])
        plan = plan_for(pattern)
        stats = MiningStats()
        cache = SetOperationCache(stats=stats)
        # order may start at either endpoint; find the wildcard root.
        root = 0
        candidates = compute_candidates(g, plan, 1, [root], cache, stats)
        want_label = plan.labels_at[1]
        if want_label is not None:
            assert all(g.label(v) == want_label for v in candidates)

    def test_step_zero_rejected(self):
        g = graph_from_edges([(0, 1)])
        plan = plan_for(path(1))
        with pytest.raises(ValueError):
            compute_candidates(
                g, plan, 0, [], SetOperationCache(), MiningStats()
            )

    def test_root_candidates_unlabeled(self):
        g = erdos_renyi(10, 0.5, seed=1)
        plan = plan_for(triangle())
        assert root_candidates(g, plan) == list(range(10))

    def test_root_candidates_labeled(self):
        g = labeled_random_graph(12, 0.5, num_labels=3, seed=2)
        pattern = triangle().with_labels([1, None, None])
        plan = plan_for(pattern)
        roots = root_candidates(g, plan)
        root_label = plan.labels_at[0]
        if root_label is not None:
            assert all(g.label(v) == root_label for v in roots)
