"""Tests for the harness pieces the scaling/summary benches rely on."""

import pytest

from repro.bench import OK, TLE, RunOutcome, speedup, timed_run
from repro.errors import TimeLimitExceeded


class TestHarnessBackstop:
    def test_backstop_marks_slow_ok_runs_as_tle(self):
        """A workload that ignores deadlines still gets flagged when the
        harness-side backstop budget is exceeded."""
        import time

        def slow():
            time.sleep(0.05)
            return "done"

        outcome = timed_run(slow, time_limit=0.01)
        assert outcome.status == TLE
        # value is still captured (the run DID complete, just late)
        assert outcome.value == "done"

    def test_fast_run_within_backstop(self):
        outcome = timed_run(lambda: 1, time_limit=10)
        assert outcome.ok

    def test_cooperative_deadline_preferred(self):
        def cooperative():
            raise TimeLimitExceeded(0.01, 0.02)

        outcome = timed_run(cooperative)
        assert outcome.status == TLE
        assert outcome.value is None


class TestSpeedupCells:
    def test_huge_ratio_scientific(self):
        cell = speedup(RunOutcome(OK, 0.001), RunOutcome(OK, 100.0))
        assert "e+" in cell

    def test_midrange_ratio_integer(self):
        assert speedup(RunOutcome(OK, 1.0), RunOutcome(OK, 42.0)) == "42x"

    def test_small_ratio_one_decimal(self):
        assert speedup(RunOutcome(OK, 1.0), RunOutcome(OK, 1.55)) == "1.6x"

    def test_budget_floor_applies(self):
        ours = RunOutcome(OK, 1.0)
        failed = RunOutcome(TLE, 5.0)  # died early in wall-clock terms
        cell = speedup(ours, failed, baseline_budget=30.0)
        assert cell == ">=30x"
