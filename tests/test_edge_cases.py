"""Edge cases across the stack: degenerate graphs, extreme parameters."""

import pytest

from repro.apps import (
    keyword_search,
    maximal_quasi_cliques,
    mine_quasi_cliques,
    mine_quasi_cliques_fused,
)
from repro.baselines.naive import maximal_quasi_cliques as oracle_mqc
from repro.graph import Graph, GraphBuilder, erdos_renyi, graph_from_edges
from repro.mining import MiningEngine
from repro.patterns import Pattern, clique, edge, path, triangle


def empty_graph(n=5):
    builder = GraphBuilder()
    for v in range(n):
        builder.add_vertex(v)
    return builder.build()


class TestDegenerateGraphs:
    def test_mqc_on_edgeless_graph(self):
        result = maximal_quasi_cliques(empty_graph(), 0.8, 5)
        assert result.count == 0

    def test_mqc_on_single_triangle(self):
        g = graph_from_edges([(0, 1), (1, 2), (0, 2)])
        result = maximal_quasi_cliques(g, 0.8, 5)
        assert result.all_sets() == {frozenset({0, 1, 2})}

    def test_engine_on_single_vertex_graph(self):
        g = empty_graph(1)
        assert MiningEngine(g).count(triangle()) == 0
        assert MiningEngine(g).count(Pattern(1, [])) == 1

    def test_single_edge_pattern(self):
        g = graph_from_edges([(0, 1), (1, 2)])
        assert MiningEngine(g).count(edge()) == 2

    def test_kws_no_matching_labels(self):
        g = Graph([(1,), (0,)], labels=[5, 6])
        result = keyword_search(
            g, [0, 1, 2], 3, collect_workload_stats=False
        )
        assert result.count == 0

    def test_kws_single_vertex_covers(self):
        # one keyword: minimal covers are exactly the labeled vertices
        g = Graph([(1,), (0, 2), (1,)], labels=[7, 7, 8])
        result = keyword_search(
            g, [7], 3, collect_workload_stats=False
        )
        assert result.minimal == {frozenset({0}), frozenset({1})}


class TestExtremeParameters:
    def test_single_size_workload_everything_maximal(self):
        """min_size == max_size: no constraints, every match is valid."""
        g = erdos_renyi(14, 0.5, seed=1)
        result = maximal_quasi_cliques(g, 0.8, 4, min_size=4)
        plain = mine_quasi_cliques(g, 0.8, 4, min_size=4)
        assert result.all_sets() == plain.all_sets()

    def test_gamma_one_is_cliques(self):
        g = erdos_renyi(14, 0.5, seed=2)
        result = maximal_quasi_cliques(g, 1.0, 4)
        assert result.all_sets() == oracle_mqc(g, 1.0, 3, 4)

    def test_pattern_larger_than_graph(self):
        g = erdos_renyi(4, 0.9, seed=3)
        assert MiningEngine(g).count(clique(6)) == 0

    def test_duplicate_keywords_collapse(self):
        from conftest import labeled_random_graph

        g = labeled_random_graph(12, 0.35, num_labels=4, seed=4)
        a = keyword_search(g, [0, 1], 4, collect_workload_stats=False)
        b = keyword_search(g, [0, 1, 1, 0], 4, collect_workload_stats=False)
        assert a.minimal == b.minimal

    def test_fused_qc_min_size_one(self):
        g = erdos_renyi(10, 0.4, seed=5)
        result = mine_quasi_cliques_fused(g, 0.8, 3, min_size=1)
        # every vertex is a size-1 quasi-clique
        assert len(result.by_size.get(1, set())) == 10

    def test_dense_complete_graph(self):
        g = graph_from_edges(
            [(u, v) for u in range(7) for v in range(u + 1, 7)]
        )
        result = maximal_quasi_cliques(g, 0.8, 5)
        # only the size-5 subsets survive (cap), C(7,5) of them
        assert result.by_size.keys() == {5}
        assert len(result.by_size[5]) == 21


class TestPathologicalPatterns:
    def test_star_pattern_matching(self):
        from repro.patterns import star

        g = graph_from_edges([(0, 1), (0, 2), (0, 3), (0, 4)])
        assert MiningEngine(g).count(star(4)) == 1
        assert MiningEngine(g).count(star(3)) == 4  # choose 3 leaves

    def test_long_path_pattern(self):
        g = graph_from_edges([(i, i + 1) for i in range(6)])
        assert MiningEngine(g).count(path(6)) == 1
        assert MiningEngine(g).count(path(7)) == 0

    def test_labeled_pattern_no_matching_roots(self):
        from conftest import labeled_random_graph

        g = labeled_random_graph(10, 0.5, num_labels=2, seed=6)
        pattern = triangle().with_labels([9, 9, 9])  # label absent
        assert MiningEngine(g).count(pattern) == 0
