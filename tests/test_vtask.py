"""Tests for VTasks: alignment, gap bridging, fusion, enumeration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.naive import match_contained_in, pattern_matches
from repro.core import ValidationTarget
from repro.graph import erdos_renyi
from repro.mining import ConstraintStats, SetOperationCache
from repro.patterns import (
    clique,
    diamond,
    diamond_house,
    house,
    quasi_clique_patterns,
    tailed_triangle,
    triangle,
)

from conftest import graph_strategy


def make(p_m, p_plus, graph, induced=False, **kw):
    return ValidationTarget(p_m, p_plus, graph, induced=induced, **kw)


class TestConstruction:
    def test_recipes_exist(self):
        g = erdos_renyi(10, 0.4, seed=0)
        target = make(triangle(), house(), g)
        assert target.recipes
        assert target.gap == 2

    def test_orbit_dedup_reduces_recipes(self):
        g = erdos_renyi(10, 0.4, seed=0)
        deduped = make(clique(4), clique(6), g, induced=True)
        full = make(
            clique(4), clique(6), g, induced=True, dedup_embeddings=False
        )
        assert len(deduped.recipes) < len(full.recipes)
        # K4 in K6 is a single orbit under Aut(K6).
        assert len(deduped.recipes) == 1

    def test_same_size_rejected(self):
        g = erdos_renyi(5, 0.5, seed=0)
        with pytest.raises(ValueError):
            make(triangle(), triangle(), g)

    def test_recipe_anchors_nonempty(self):
        g = erdos_renyi(10, 0.4, seed=0)
        target = make(triangle(), diamond_house(), g)
        for recipe in target.recipes:
            assert all(recipe.anchors)

    def test_unknown_strategy_rejected(self):
        g = erdos_renyi(5, 0.5, seed=0)
        with pytest.raises(ValueError):
            make(triangle(), house(), g, strategy="bogus")


class TestRunCorrectness:
    """VTask existence result must agree with the brute-force oracle."""

    def _check_agreement(self, graph, p_m, p_plus, induced):
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        target = make(p_m, p_plus, graph, induced=induced)
        for assignment in pattern_matches(graph, p_m, induced=induced):
            ordered = [assignment[v] for v in p_m.vertices()]
            got = target.run(ordered, graph, cache, stats)
            want = match_contained_in(graph, ordered, p_m, p_plus, induced)
            assert (got is not None) == want
            if got is not None:
                # the completion must itself be a valid p_plus match
                # containing the p_m match's vertices
                assert set(ordered) <= set(got)
                for u, v in p_plus.edges:
                    assert graph.has_edge(got[u], got[v])

    @pytest.mark.parametrize("seed", range(4))
    def test_triangle_house_edge_induced(self, seed):
        g = erdos_renyi(12, 0.3, seed=seed)
        self._check_agreement(g, triangle(), house(), induced=False)

    @pytest.mark.parametrize("seed", range(4))
    def test_gap_two_bridging(self, seed):
        g = erdos_renyi(12, 0.3, seed=seed)
        self._check_agreement(g, triangle(), diamond_house(), induced=False)

    @pytest.mark.parametrize("seed", range(3))
    def test_induced_quasi_cliques(self, seed):
        g = erdos_renyi(12, 0.45, seed=seed)
        (k4,) = quasi_clique_patterns(4, 0.8)
        for k6 in quasi_clique_patterns(6, 0.8):
            self._check_agreement(g, k4, k6, induced=True)

    @pytest.mark.parametrize("mode", ["naive", "heuristic"])
    def test_udf_modes_agree(self, mode):
        g = erdos_renyi(12, 0.35, seed=7)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        fancy = make(triangle(), house(), g)
        plain = make(
            triangle(), house(), g,
            strategy=mode, dedup_embeddings=False, use_intersections=False,
        )
        for assignment in pattern_matches(g, triangle()):
            ordered = [assignment[v] for v in triangle().vertices()]
            a = fancy.run(ordered, g, cache, stats) is not None
            b = plain.run(ordered, g, cache, stats) is not None
            assert a == b

    @given(graph_strategy(max_vertices=9), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_property_containment_agreement(self, g, pick):
        patterns = [
            (triangle(), tailed_triangle()),
            (triangle(), house()),
            (diamond(), diamond_house()),
            (triangle(), clique(5)),
        ]
        p_m, p_plus = patterns[pick]
        self._check_agreement(g, p_m, p_plus, induced=False)


class TestEnumeration:
    def test_enumerate_completions_finds_all(self):
        g = erdos_renyi(11, 0.5, seed=3)
        stats = ConstraintStats()
        cache = SetOperationCache(stats=stats)
        target = make(triangle(), clique(4), g, induced=True)
        from repro.patterns import canonical_assignment
        from repro.mining import MiningEngine

        expected = {
            canonical_assignment(m.assignment, clique(4))
            for m in MiningEngine(g, induced=True).find_all(clique(4))
        }
        found = set()
        for assignment in pattern_matches(g, triangle(), induced=True):
            ordered = [assignment[v] for v in triangle().vertices()]
            target.enumerate_completions(
                ordered, g, cache, stats,
                lambda comp: found.add(
                    canonical_assignment(comp, clique(4))
                ),
            )
        assert found == expected

    def test_fusion_shares_cache(self):
        g = erdos_renyi(14, 0.5, seed=4)
        stats = ConstraintStats()
        shared = SetOperationCache(stats=stats)
        target = make(triangle(), clique(4), g, induced=True)
        matches = pattern_matches(g, triangle(), induced=True)[:20]
        for assignment in matches:
            ordered = [assignment[v] for v in triangle().vertices()]
            target.run(ordered, g, shared, stats)
        assert stats.cache_hits > 0
