"""Extended engine tests: explore_many, plan reuse, determinism."""

import pytest

from repro.graph import erdos_renyi
from repro.mining import CountProcessor, MiningEngine
from repro.patterns import clique, path, plan_for, triangle


class TestExploreMany:
    def test_counts_per_pattern(self):
        g = erdos_renyi(14, 0.45, seed=1)
        engine = MiningEngine(g)
        processors = engine.explore_many([triangle(), clique(4)])
        assert processors[0].result() == MiningEngine(g).count(triangle())
        assert processors[1].result() == MiningEngine(g).count(clique(4))

    def test_custom_processor_factory(self):
        g = erdos_renyi(10, 0.5, seed=2)
        engine = MiningEngine(g)
        processors = engine.explore_many(
            [triangle()], processor_factory=CountProcessor
        )
        assert len(processors) == 1


class TestDeterminism:
    def test_same_engine_same_results(self):
        g = erdos_renyi(16, 0.4, seed=3)
        a = [m.assignment for m in MiningEngine(g).find_all(triangle())]
        b = [m.assignment for m in MiningEngine(g).find_all(triangle())]
        assert a == b

    def test_plan_object_shared(self):
        g = erdos_renyi(8, 0.5, seed=4)
        engine = MiningEngine(g)
        assert engine.plan(triangle()) is plan_for(triangle())

    def test_induced_engines_use_induced_plans(self):
        g = erdos_renyi(8, 0.5, seed=4)
        engine = MiningEngine(g, induced=True)
        assert engine.plan(path(2)).induced

    def test_matches_ordered_by_root(self):
        g = erdos_renyi(14, 0.5, seed=5)
        engine = MiningEngine(g)
        plan = engine.plan(triangle())
        roots = [
            m.assignment[plan.order[0]]
            for m in engine.find_all(triangle())
        ]
        assert roots == sorted(roots)


class TestStatsAccounting:
    def test_rl_paths_at_least_matches(self):
        g = erdos_renyi(14, 0.4, seed=6)
        engine = MiningEngine(g)
        count = engine.count(clique(3))
        assert engine.stats.rl_paths >= count
        assert engine.stats.matches_found == count

    def test_etasks_completed_equals_started_without_stop(self):
        g = erdos_renyi(14, 0.4, seed=7)
        engine = MiningEngine(g)
        engine.count(triangle())
        assert engine.stats.etasks_started == engine.stats.etasks_completed

    def test_candidate_computations_positive(self):
        g = erdos_renyi(14, 0.4, seed=8)
        engine = MiningEngine(g)
        engine.count(triangle())
        assert engine.stats.candidate_computations > 0
