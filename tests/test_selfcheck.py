"""Tests for the library-wide analyzer self-check (the CI gate)."""

import importlib

from repro.analysis import library_patterns, selfcheck
from repro.patterns.pattern import Pattern

# The package re-exports the ``selfcheck`` *function* under the same
# name as the module; fetch the module itself for monkeypatching.
selfcheck_module = importlib.import_module("repro.analysis.selfcheck")


class TestSelfcheckClean:
    def test_shipped_library_is_clean(self):
        report = selfcheck()
        assert report.ok
        assert report.errors == []
        # The gate exercises real workloads, so it is never empty:
        # KWS legitimately produces SKIP-bucket warnings.
        assert len(report) > 0

    def test_library_patterns_cover_named_shapes(self):
        names = {p.name for p in library_patterns() if p.name}
        assert {"edge", "triangle", "diamond", "house"} <= names


class TestSelfcheckCatchesDefects:
    def test_injected_disconnected_pattern_is_caught(self, monkeypatch):
        defect = Pattern(4, [(0, 1), (2, 3)], name="defect")

        def patched():
            return library_patterns() + [defect]

        monkeypatch.setattr(
            selfcheck_module, "library_patterns", patched
        )
        report = selfcheck_module.selfcheck()
        assert report.has_errors
        assert "CG001" in report.codes()
        assert any(
            d.code == "CG001" and "defect" in d.subject
            for d in report.diagnostics
        )

    def test_injected_anti_vertex_pattern_warns(self, monkeypatch):
        defect = Pattern(
            3, [(0, 1), (1, 2)], anti_vertices=[2], name="anti-defect"
        )

        def patched():
            return library_patterns() + [defect]

        monkeypatch.setattr(
            selfcheck_module, "library_patterns", patched
        )
        report = selfcheck_module.selfcheck()
        assert "CG002" in report.codes()
