"""Focused tests for the ETask recursion and helpers."""

from repro.graph import erdos_renyi, graph_from_edges
from repro.mining import (
    ETask,
    MiningStats,
    SetOperationCache,
    run_single_pattern,
)
from repro.patterns import clique, path, plan_for, triangle


def make_task(graph, pattern, root, induced=False):
    stats = MiningStats()
    cache = SetOperationCache(stats=stats)
    plan = plan_for(pattern, induced=induced)
    return ETask(graph, plan, root, cache, stats), stats


class TestETask:
    def test_root_with_wrong_label_skips(self):
        from repro.graph import Graph

        g = Graph([(1,), (0,)], labels=[3, 4])
        pattern = path(1).with_labels([5, None])
        task, stats = make_task(g, pattern, 0)
        stopped = task.run(lambda m: False)
        assert not stopped
        assert stats.matches_found == 0
        assert stats.etasks_completed == 1

    def test_early_stop_propagates(self):
        g = erdos_renyi(12, 0.6, seed=0)
        task, stats = make_task(g, triangle(), 0)
        seen = []

        def stop_after_one(match):
            seen.append(match)
            return True

        stopped = task.run(stop_after_one)
        assert stopped
        assert len(seen) == 1
        # a stopped task never counts as completed
        assert stats.etasks_completed == 0

    def test_rl_paths_counted_for_dead_ends(self):
        # star center has no triangles: every descent dead-ends
        g = graph_from_edges([(0, 1), (0, 2), (0, 3)])
        task, stats = make_task(g, triangle(), 0)
        task.run(lambda m: False)
        assert stats.matches_found == 0
        assert stats.rl_paths > 0

    def test_matches_rooted_at_first_order_position(self):
        g = erdos_renyi(12, 0.5, seed=1)
        pattern = triangle()
        plan = plan_for(pattern)
        task, _ = make_task(g, pattern, 5)
        roots = set()
        task.run(
            lambda m: roots.add(m.assignment[plan.order[0]]) or False
        )
        assert roots <= {5}


class TestRunSinglePattern:
    def test_counts_all_roots(self):
        g = erdos_renyi(14, 0.5, seed=2)
        found = []
        stats = run_single_pattern(
            g, plan_for(triangle()), lambda m: found.append(m) or False
        )
        from repro.mining import MiningEngine

        assert len(found) == MiningEngine(g).count(triangle())
        assert stats.etasks_started == 14

    def test_restricted_roots(self):
        g = erdos_renyi(14, 0.5, seed=2)
        found = []
        run_single_pattern(
            g,
            plan_for(triangle()),
            lambda m: found.append(m) or False,
            roots=[0],
        )
        plan = plan_for(triangle())
        assert all(m.assignment[plan.order[0]] == 0 for m in found)

    def test_early_stop(self):
        g = erdos_renyi(14, 0.6, seed=3)
        found = []
        run_single_pattern(
            g, plan_for(clique(3)), lambda m: found.append(m) or True
        )
        assert len(found) == 1
