"""Tests for automorphisms and symmetry-breaking conditions.

The load-bearing property: for every pattern and every set of distinct
data-vertex assignments, *exactly one* automorphic image satisfies the
symmetry-breaking conditions — this is what makes the engine emit each
subgraph exactly once.
"""

import itertools

from hypothesis import given, settings

from repro.patterns import (
    Pattern,
    automorphisms,
    canonical_assignment,
    clique,
    conditions_by_position,
    cycle,
    orbit_of,
    orbits,
    path,
    satisfies_conditions,
    star,
    symmetry_conditions,
    tailed_triangle,
    triangle,
)

from conftest import connected_pattern_strategy


class TestAutomorphisms:
    def test_triangle_full_symmetry(self):
        assert len(automorphisms(triangle())) == 6

    def test_clique(self):
        assert len(automorphisms(clique(4))) == 24

    def test_path_reflection(self):
        assert len(automorphisms(path(2))) == 2

    def test_tailed_triangle(self):
        # Only the two roof corners (0 and 1) swap.
        assert len(automorphisms(tailed_triangle())) == 2

    def test_cycle(self):
        # Dihedral group: 2n automorphisms.
        assert len(automorphisms(cycle(5))) == 10

    def test_labels_restrict_automorphisms(self):
        labeled = triangle().with_labels([1, 1, 2])
        assert len(automorphisms(labeled)) == 2

    def test_identity_always_present(self):
        for p in (triangle(), path(3), star(3)):
            assert tuple(range(p.num_vertices)) in automorphisms(p)

    def test_orbits_triangle(self):
        assert orbits(triangle()) == [{0, 1, 2}]

    def test_orbits_star(self):
        groups = sorted(orbits(star(3)), key=len)
        assert groups == [{0}, {1, 2, 3}]

    def test_orbit_of(self):
        assert orbit_of(star(3), 2) == {1, 2, 3}


class TestConditions:
    def test_triangle_conditions_total_order(self):
        assert symmetry_conditions(triangle()) == [(0, 1), (0, 2), (1, 2)]

    def test_asymmetric_pattern_no_conditions(self):
        asymmetric = Pattern(
            6,
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5), (1, 3)],
        )
        if len(automorphisms(asymmetric)) == 1:
            assert symmetry_conditions(asymmetric) == []

    def test_satisfies_conditions(self):
        conditions = [(0, 1)]
        assert satisfies_conditions([2, 5], conditions)
        assert not satisfies_conditions([5, 2], conditions)

    def test_conditions_by_position_direction(self):
        # order reverses vertices: condition (0, 1) with order (1, 0):
        # vertex 1 is bound first (position 0), vertex 0 second.
        keyed = conditions_by_position([(0, 1)], order=(1, 0))
        # when binding position 1 (= vertex 0) it must be LESS than pos 0
        assert keyed == {1: [(0, False)]}

    def _assert_exactly_one_representative(self, pattern):
        """Core uniqueness property on concrete assignments."""
        conditions = symmetry_conditions(pattern)
        auts = automorphisms(pattern)
        k = pattern.num_vertices
        assignment = list(range(10, 10 + k))
        images = {
            tuple(assignment[sigma[v]] for v in range(k)) for sigma in auts
        }
        satisfying = [a for a in images if satisfies_conditions(a, conditions)]
        assert len(satisfying) == 1

    def test_exactly_one_representative_library(self):
        for p in (triangle(), clique(4), path(3), star(3), cycle(4),
                  tailed_triangle(), cycle(6), clique(5)):
            self._assert_exactly_one_representative(p)

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=60, deadline=None)
    def test_exactly_one_representative_property(self, p):
        self._assert_exactly_one_representative(p)

    @given(connected_pattern_strategy(max_vertices=5))
    @settings(max_examples=40, deadline=None)
    def test_representative_is_reachable_from_any_image(self, p):
        """Every automorphic image class has a satisfying member."""
        conditions = symmetry_conditions(p)
        auts = automorphisms(p)
        k = p.num_vertices
        for base in itertools.islice(
            itertools.permutations(range(20, 20 + k)), 10
        ):
            images = {
                tuple(base[sigma[v]] for v in range(k)) for sigma in auts
            }
            assert sum(
                1 for a in images if satisfies_conditions(a, conditions)
            ) == 1


class TestCanonicalAssignment:
    def test_minimal_image(self):
        # triangle: all 6 permutations are automorphic; min is sorted.
        assert canonical_assignment([5, 3, 4], triangle()) == (3, 4, 5)

    def test_respects_structure(self):
        p = tailed_triangle()  # only 0<->1 swap allowed
        assert canonical_assignment([7, 2, 5, 9], p) == (2, 7, 5, 9)

    def test_idempotent(self):
        p = clique(4)
        once = canonical_assignment([4, 2, 8, 6], p)
        assert canonical_assignment(once, p) == once
