"""Tests for bench datasets, the harness, reports, stats, and errors."""

import pytest

from repro.bench import (
    OK,
    OOM,
    OOS,
    TLE,
    RunOutcome,
    dataset,
    dataset_keys,
    format_series,
    format_table,
    labeled_dataset_keys,
    spec,
    speedup,
    table1_rows,
    timed_run,
)
from repro.errors import (
    MemoryBudgetExceeded,
    StorageBudgetExceeded,
    TimeLimitExceeded,
)
from repro.mining import ConstraintStats, MiningStats


class TestDatasets:
    def test_keys_in_table1_order(self):
        assert dataset_keys() == [
            "amazon", "dblp", "mico", "patents", "youtube", "products",
        ]

    def test_labeled_subset(self):
        assert labeled_dataset_keys() == [
            "mico", "patents", "youtube", "products",
        ]

    def test_datasets_deterministic_and_cached(self):
        a = dataset("amazon")
        b = dataset("amazon")
        assert a is b

    def test_label_status_matches_paper(self):
        for key in dataset_keys():
            g = dataset(key)
            expected_labeled = spec(key).paper_labels > 0
            assert g.is_labeled == expected_labeled

    def test_relative_size_ordering_preserved(self):
        """Bigger paper graphs map to bigger analogs (within family)."""
        az, yt = dataset("amazon"), dataset("youtube")
        assert yt.num_edges > 4 * az.num_edges

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            dataset("nope")
        with pytest.raises(KeyError):
            spec("nope")

    def test_table1_rows(self):
        rows = table1_rows()
        assert len(rows) == 6
        assert rows[0][0] == "Amazon (AZ)"


class TestHarness:
    def test_ok_outcome(self):
        outcome = timed_run(lambda: 42)
        assert outcome.ok
        assert outcome.value == 42
        assert float(outcome.cell()) >= 0

    def test_failure_mapping(self):
        def tle():
            raise TimeLimitExceeded(1.0, 2.0)

        def oom():
            raise MemoryBudgetExceeded(10, 20)

        def oos():
            raise StorageBudgetExceeded(10, 20)

        assert timed_run(tle).status == TLE
        assert timed_run(oom).status == OOM
        assert timed_run(oos).status == OOS
        assert timed_run(tle).cell() == TLE

    def test_count_and_stats_extracted(self):
        class FakeResult:
            count = 7
            stats = MiningStats(matches_found=7)

        outcome = timed_run(FakeResult)
        assert outcome.count == 7
        assert outcome.stats["matches_found"] == 7

    def test_speedup_exact(self):
        ours = RunOutcome(OK, 2.0)
        baseline = RunOutcome(OK, 20.0)
        assert speedup(ours, baseline) == "10x"

    def test_speedup_lower_bound_on_failure(self):
        ours = RunOutcome(OK, 2.0)
        baseline = RunOutcome(TLE, 60.0)
        cell = speedup(ours, baseline, baseline_budget=120.0)
        assert cell.startswith(">=")
        assert "60x" in cell

    def test_speedup_when_we_fail(self):
        assert speedup(RunOutcome(TLE, 1.0), RunOutcome(OK, 1.0)) == "-"


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series_with_failures(self):
        text = format_series("fig", [("x", 1.0), ("y", "TLE")])
        assert "!" in text
        assert "TLE" in text

    def test_format_series_zero(self):
        text = format_series("fig", [("x", 0.0)])
        assert "0.00" in text


class TestStats:
    def test_merge_accumulates(self):
        a = MiningStats(matches_found=2, cache_hits=1, cache_misses=1)
        b = MiningStats(matches_found=3, cache_hits=3, cache_misses=0)
        a.merge(b)
        assert a.matches_found == 5
        assert a.cache_hit_rate == pytest.approx(0.8)

    def test_constraint_stats_merge(self):
        a = ConstraintStats(vtasks_started=1, promotions=2)
        b = ConstraintStats(vtasks_started=4, vtasks_canceled_lateral=6)
        a.merge(b)
        assert a.vtasks_started == 5
        assert a.promotions == 2
        assert a.vtask_cancel_rate == pytest.approx(6 / 11)

    def test_as_dict_roundtrip(self):
        stats = ConstraintStats(matches_checked=9)
        data = stats.as_dict()
        assert data["matches_checked"] == 9
        assert "cache_hit_rate" in data

    def test_empty_rates(self):
        assert MiningStats().cache_hit_rate == 0.0
        assert ConstraintStats().vtask_cancel_rate == 0.0


class TestErrors:
    def test_messages_carry_numbers(self):
        err = TimeLimitExceeded(10.0, 12.5)
        assert "12.50" in str(err)
        assert err.limit_seconds == 10.0
        err2 = MemoryBudgetExceeded(100, 200)
        assert err2.used_bytes == 200
        err3 = StorageBudgetExceeded(5, 6)
        assert err3.budget_bytes == 5
