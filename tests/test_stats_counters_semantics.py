"""Semantic relationships between counters across a full MQC run.

The figures are only as trustworthy as the counters; these tests pin
the accounting identities the benchmarks rely on.
"""

import pytest

from repro.apps import build_mqc_engine
from repro.graph import erdos_renyi


@pytest.fixture(scope="module")
def run():
    g = erdos_renyi(18, 0.45, seed=13)
    engine = build_mqc_engine(g, 0.7, 5)
    result = engine.run()
    return engine, result


class TestAccountingIdentities:
    def test_every_match_checked_or_canceled(self, run):
        _, result = run
        stats = result.stats
        # every found match is either constraint-checked (fresh) or an
        # ETask cancellation (already handled by promotion)
        assert (
            stats.matches_checked
            == stats.matches_found - stats.etasks_canceled
            + stats.promotions
        )

    def test_promotions_equal_cancellations(self, run):
        _, result = run
        assert result.stats.promotions == result.stats.etasks_canceled

    def test_vtask_outcomes_partition(self, run):
        _, result = run
        stats = result.stats
        # matched VTasks <= started; cancellations tracked separately
        assert stats.vtasks_matched <= stats.vtasks_started
        assert stats.vtasks_canceled_lateral >= 0

    def test_valid_plus_violations_cover_checked(self, run):
        _, result = run
        stats = result.stats
        # each checked match either joined the result or had a matching
        # VTask (its violation evidence)
        assert result.count + stats.vtasks_matched >= stats.matches_checked

    def test_cache_totals(self, run):
        _, result = run
        stats = result.stats
        assert stats.cache_hits + stats.cache_misses > 0
        assert 0.0 <= stats.cache_hit_rate <= 1.0

    def test_rl_paths_bound_matches(self, run):
        _, result = run
        stats = result.stats
        assert stats.rl_paths >= stats.matches_found >= result.count
