"""Scheduler equivalence and cross-process failure-type fidelity.

The acceptance property of the execution-core refactor: for any
seeded workload, ``SerialScheduler``, ``ProcessShardScheduler``, and
``WorkQueueScheduler`` produce identical match multisets, and — with
promotion disabled, so every root's work is independent of discovery
order — identical summed counters.  With promotion enabled the match
sets still agree exactly (results are canonical and deduplicated at
merge); only the promotion/cancellation counters may differ, because
sharded registries are worker-local by design (see
``docs/execution.md``).
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.baselines import TThinkerConfig, tthinker_mqc
from repro.core import maximality_constraints
from repro.core.parallel import run_sharded
from repro.core.runtime import ContigraEngine
from repro.errors import MemoryBudgetExceeded, TimeLimitExceeded
from repro.exec import (
    ProcessShardScheduler,
    SerialScheduler,
    WorkQueueScheduler,
    make_scheduler,
)
from repro.graph import erdos_renyi
from repro.patterns import quasi_clique_patterns_up_to

N_WORKLOADS = 50

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def mqc_constraints(gamma=0.7, max_size=4):
    return maximality_constraints(
        quasi_clique_patterns_up_to(max_size, gamma), induced=True
    )


def seeded_workloads():
    """Fifty small seeded graphs spanning sizes and densities."""
    for seed in range(N_WORKLOADS):
        n = 8 + (seed % 4)
        p = 0.35 + 0.05 * (seed % 5)
        yield seed, erdos_renyi(n, p, seed=seed)


def match_multiset(result):
    return sorted(
        (pattern.structure_key(), tuple(assignment))
        for pattern, assignment in result.valid
    )


def run_with(graph, constraint_set, scheduler, **engine_options):
    # A fresh engine per run: serial runs write into engine.stats, so
    # reusing one engine would accumulate counters across schedulers.
    engine = ContigraEngine(graph, constraint_set, **engine_options)
    return engine.run_with(scheduler)


class TestThreeSchedulerEquivalence:
    def test_equivalence_on_50_seeded_workloads(self):
        """Identical matches AND identical summed counters, promotion off."""
        constraint_set = mqc_constraints()
        for seed, graph in seeded_workloads():
            serial = run_with(
                graph, constraint_set, SerialScheduler(),
                enable_promotion=False,
            )
            process = run_with(
                graph, constraint_set,
                ProcessShardScheduler(n_workers=2),
                enable_promotion=False,
            )
            workqueue = run_with(
                graph, constraint_set,
                WorkQueueScheduler(n_workers=3),
                enable_promotion=False,
            )
            reference = match_multiset(serial)
            assert match_multiset(process) == reference, f"seed {seed}"
            assert match_multiset(workqueue) == reference, f"seed {seed}"
            counters = serial.stats.as_dict()
            assert process.stats.as_dict() == counters, f"seed {seed}"
            assert workqueue.stats.as_dict() == counters, f"seed {seed}"

    def test_match_sets_agree_with_promotion_enabled(self):
        """Promotion on: worker-local registries, same final matches."""
        constraint_set = mqc_constraints()
        for seed, graph in list(seeded_workloads())[:10]:
            serial = run_with(graph, constraint_set, SerialScheduler())
            process = run_with(
                graph, constraint_set, ProcessShardScheduler(n_workers=2)
            )
            workqueue = run_with(
                graph, constraint_set, WorkQueueScheduler(n_workers=3)
            )
            reference = match_multiset(serial)
            assert match_multiset(process) == reference, f"seed {seed}"
            assert match_multiset(workqueue) == reference, f"seed {seed}"

    def test_make_scheduler_round_trip(self):
        assert isinstance(make_scheduler("serial"), SerialScheduler)
        assert isinstance(make_scheduler("process"), ProcessShardScheduler)
        assert isinstance(
            make_scheduler("workqueue"), WorkQueueScheduler
        )
        with pytest.raises(ValueError):
            make_scheduler("bogus")
        with pytest.raises(ValueError):
            make_scheduler("process", n_workers=0)


class TestCrossProcessFailureTypes:
    """Worker budget failures must surface as their original classes."""

    def test_sharded_run_tle_preserves_type(self):
        g = erdos_renyi(60, 0.4, seed=3)
        with pytest.raises(TimeLimitExceeded) as info:
            run_sharded(
                g,
                mqc_constraints(gamma=0.6, max_size=6),
                n_workers=2,
                engine_options={"time_limit": 0.02},
            )
        # Shards run under the *residual* budget at dispatch time —
        # never more than the configured limit (and never a fresh copy
        # of it; see repro.exec.resilience.BudgetSpec).
        assert 0 < info.value.limit_seconds <= 0.02
        assert info.value.elapsed > 0

    @pytest.mark.skipif(
        not HAS_FORK, reason="fork start method required"
    )
    def test_sharded_tthinker_oom_surfaces_as_oom(self):
        """The regression the exception ``__reduce__`` fix is for:
        an OOM raised inside a worker process crosses the pool
        boundary as ``MemoryBudgetExceeded``, not a pickling error or
        a generic failure."""
        with ProcessPoolExecutor(
            max_workers=2,
            mp_context=multiprocessing.get_context("fork"),
        ) as pool:
            with pytest.raises(MemoryBudgetExceeded) as info:
                list(pool.map(_tthinker_oom_shard, [0, 1]))
        assert info.value.budget_bytes == 64
        assert info.value.used_bytes > 64


def _tthinker_oom_shard(_shard_index):
    graph = erdos_renyi(80, 0.35, seed=42)
    return tthinker_mqc(
        graph, 0.7, 5, config=TThinkerConfig(memory_budget_bytes=64)
    )


class TestWorkQueueCancellation:
    def test_deadline_in_one_worker_stops_the_run(self):
        g = erdos_renyi(60, 0.4, seed=3)
        engine = ContigraEngine(
            g, mqc_constraints(gamma=0.6, max_size=6), time_limit=0.02
        )
        with pytest.raises(TimeLimitExceeded):
            engine.run_with(WorkQueueScheduler(n_workers=3))

    def test_precancelled_context_runs_nothing(self):
        from repro.exec import TaskContext

        g = erdos_renyi(14, 0.5, seed=4)
        engine = ContigraEngine(g, mqc_constraints())
        ctx = TaskContext.create()
        ctx.cancel("aborted before start")
        result = engine.run_with(WorkQueueScheduler(n_workers=2), ctx=ctx)
        assert result.valid == []
        assert result.stats.etasks_started == 0
