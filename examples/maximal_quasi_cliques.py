#!/usr/bin/env python3
"""Maximal quasi-clique mining across systems (the Table 3 scenario).

Runs the same MQC workload on three implementations —

* Contigra (validation during exploration, fused VTasks, promotion);
* Peregrine+ (post-hoc maximality checks in a user callback);
* a TThinker-style solver (buffer candidates, post-process), with a
  simulated memory budget —

and prints times, work counters, and agreement of the result sets.

Run:  python examples/maximal_quasi_cliques.py [dataset] [gamma]
"""

import sys

from repro.baselines import TThinkerConfig, posthoc_mqc, tthinker_mqc
from repro.bench import dataset, dataset_keys
from repro.bench.harness import timed_run
from repro.apps import maximal_quasi_cliques


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "dblp"
    gamma = float(sys.argv[2]) if len(sys.argv) > 2 else 0.8
    if key not in dataset_keys():
        raise SystemExit(f"unknown dataset {key!r}; pick from {dataset_keys()}")
    graph = dataset(key)
    max_size = 5
    print(f"dataset={key} {graph}  gamma={gamma}  sizes 3..{max_size}\n")

    contigra = timed_run(
        lambda: maximal_quasi_cliques(graph, gamma, max_size, time_limit=120)
    )
    print(f"Contigra:   {contigra.cell()}s  "
          f"({contigra.count if contigra.ok else '-'} maximal)")
    if contigra.ok:
        stats = contigra.value.stats
        print(f"            VTasks={stats.vtasks_started} "
              f"canceled={stats.vtasks_canceled_lateral} "
              f"promotions={stats.promotions} "
              f"cache-hit={stats.cache_hit_rate:.0%}")

    peregrine = timed_run(
        lambda: posthoc_mqc(graph, gamma, max_size, time_limit=120)
    )
    print(f"Peregrine+: {peregrine.cell()}s  "
          f"({peregrine.count if peregrine.ok else '-'} maximal, "
          f"post-hoc checks="
          f"{peregrine.value.stats.matches_checked if peregrine.ok else '-'})")

    tthinker = timed_run(
        lambda: tthinker_mqc(
            graph, gamma, max_size,
            config=TThinkerConfig(time_limit=120),
        )
    )
    label = tthinker.count if tthinker.ok else "-"
    print(f"TThinker:   {tthinker.cell()}s  ({label} maximal)")
    if tthinker.ok:
        acct = tthinker.value.accounting
        print(f"            buffered={acct.candidates_buffered} candidates "
              f"({acct.candidate_bytes} bytes), "
              f"tasks={acct.tasks_created} ({acct.task_bytes} bytes)")

    if contigra.ok and peregrine.ok:
        agree = contigra.value.all_sets() == peregrine.value.valid
        print(f"\nContigra == Peregrine+ result sets: {agree}")
    if contigra.ok and tthinker.ok:
        agree = contigra.value.all_sets() == tthinker.value.maximal
        print(f"Contigra == TThinker result sets:   {agree}")


if __name__ == "__main__":
    main()
