#!/usr/bin/env python3
"""Directed matching and directed nested queries.

The paper notes its techniques "also apply to directed graphs" (§2.1);
this example exercises the directed substrate on a citation-style
graph:

1. count the classic directed 3-vertex motifs (feed-forward loop,
   directed cycle, chains);
2. run a directed nested subgraph query: feed-forward loops that are
   not embedded in a "bi-fan-out" (a second shared target).

Run:  python examples/directed_motifs.py
"""

from repro.graph import directed_citation_graph, directed_erdos_renyi
from repro.mining import di_count, directed_containment_query
from repro.patterns import DiPattern


def main() -> None:
    citations = directed_citation_graph(
        300, references_per_vertex=3, seed=5, name="citations"
    )
    random_ref = directed_erdos_renyi(
        300, citations.num_edges / (300 * 299), seed=6, name="random"
    )
    print(f"citation graph: {citations}")
    print(f"random control: {random_ref}\n")

    motifs = {
        "chain        (0->1->2)": DiPattern(3, [(0, 1), (1, 2)]),
        "fan-out      (0->1, 0->2)": DiPattern(3, [(0, 1), (0, 2)]),
        "fan-in       (0->2, 1->2)": DiPattern(3, [(0, 2), (1, 2)]),
        "feed-forward (0->1->2, 0->2)": DiPattern(
            3, [(0, 1), (1, 2), (0, 2)]
        ),
        "cycle        (0->1->2->0)": DiPattern(3, [(0, 1), (1, 2), (2, 0)]),
    }
    print(f"{'motif':34s} {'citations':>10s} {'random':>10s}")
    for name, pattern in motifs.items():
        print(
            f"{name:34s} {di_count(citations, pattern):>10d} "
            f"{di_count(random_ref, pattern):>10d}"
        )

    # Directed NSQ: feed-forward loops that are *terminal* — neither
    # driven by an upstream regulator (chain-ext) nor feeding a second
    # shared sink (sink-ext).
    ffl = DiPattern(3, [(0, 1), (1, 2), (0, 2)], name="ffl")
    chain_ext = DiPattern(
        4, [(0, 1), (1, 2), (0, 2), (3, 0), (3, 1)], name="driven-ffl"
    )
    sink_ext = DiPattern(
        4, [(0, 1), (1, 2), (0, 2), (0, 3), (2, 3)], name="ffl-with-sink"
    )
    lone = directed_containment_query(citations, ffl, [chain_ext, sink_ext])
    total = di_count(citations, ffl)
    print(
        f"\nfeed-forward loops: {total}; terminal (in neither larger "
        f"shape): {len(lone)}"
    )


if __name__ == "__main__":
    main()
