#!/usr/bin/env python3
"""The fluent query API and the pattern DSL, end to end.

Builds nested subgraph queries from DSL text — the workflow a user of
a graph query language with nested MATCH clauses (the paper's
Cypher/GQL motivation) would follow:

1. describe patterns as text;
2. chain containment constraints fluently;
3. run with a time budget and inspect matches.

Run:  python examples/nested_query_builder.py [dataset]
"""

import sys

from repro.bench import dataset, dataset_keys
from repro.core import Query
from repro.patterns import parse_pattern, to_dot


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "amazon"
    if key not in dataset_keys():
        raise SystemExit(f"unknown dataset {key!r}; pick from {dataset_keys()}")
    graph = dataset(key)
    print(f"dataset={key} {graph}\n")

    # "Find squares (4-cycles) that are not braced by a diagonal
    # vertex": a C4 match is excluded if some fifth vertex closes a
    # wheel over it.
    square = parse_pattern("0-1-2-3-0", name="square")
    braced = parse_pattern("0-1-2-3-0, 4-0, 4-1, 4-2", name="braced-square")
    wheel5 = parse_pattern("0-1-2-3-0, 4-0, 4-1, 4-2, 4-3", name="wheel")

    query = (
        Query(square)
        .not_within(braced)
        .not_within(wheel5)
        .time_limit(60)
    )
    print(f"query: {query}")
    result = query.run(graph)
    print(f"unbraced squares: {result.count}")
    print(f"VTasks run: {result.stats.vtasks_started}, "
          f"canceled laterally: {result.stats.vtasks_canceled_lateral}")

    for assignment in result.assignments()[:5]:
        print(f"  match: {assignment}")

    # The same patterns render to Graphviz for documentation.
    print("\nDOT rendering of the constraint pattern:")
    print(to_dot(braced, name="braced_square"))


if __name__ == "__main__":
    main()
