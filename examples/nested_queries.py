#!/usr/bin/env python3
"""Nested subgraph queries and anti-vertex queries (Fig 12 scenario).

Runs the paper's two NSQ shapes — triangles not contained in size-5
patterns, tailed triangles not contained in size-6 patterns — with
Contigra and the post-hoc Peregrine+ baseline, then demonstrates the
anti-vertex lowering: "triangles with no common neighbor of two of
their corners".

Run:  python examples/nested_queries.py [dataset]
"""

import sys

from repro.apps import (
    anti_vertex_query,
    nested_subgraph_query,
    paper_query_tailed_triangles,
    paper_query_triangles,
)
from repro.baselines import posthoc_nsq
from repro.bench import dataset, dataset_keys
from repro.bench.harness import timed_run
from repro.patterns import Pattern


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "amazon"
    if key not in dataset_keys():
        raise SystemExit(f"unknown dataset {key!r}; pick from {dataset_keys()}")
    graph = dataset(key)
    print(f"dataset={key} {graph}\n")

    for title, (p_m, p_plus_list) in (
        ("Q1: triangles not in size-5 patterns", paper_query_triangles()),
        (
            "Q2: tailed triangles not in size-6 patterns",
            paper_query_tailed_triangles(),
        ),
    ):
        ours = timed_run(
            lambda: nested_subgraph_query(
                graph, p_m, p_plus_list, time_limit=120
            )
        )
        baseline = timed_run(
            lambda: posthoc_nsq(graph, p_m, p_plus_list, time_limit=120)
        )
        print(title)
        print(f"  Contigra:   {ours.cell()}s  "
              f"{ours.count if ours.ok else '-'} valid matches")
        print(f"  Peregrine+: {baseline.cell()}s  "
              f"{len(baseline.value.assignments) if baseline.ok else '-'} "
              f"valid matches")
        if ours.ok and baseline.ok:
            agree = set(ours.value.assignments()) == baseline.value.assignments
            print(f"  results agree: {agree}\n")

    # Anti-vertex: a triangle (vertices 0,1,2) with an anti-vertex 3
    # adjacent to 0 and 1 — matches only triangles where no data vertex
    # completes that wedge, i.e. edge (0,1) is in no second triangle.
    anti_pattern = Pattern(
        4,
        [(0, 1), (1, 2), (0, 2), (0, 3), (1, 3)],
        anti_vertices=[3],
        name="triangle-antiwedge",
    )
    outcome = timed_run(lambda: anti_vertex_query(graph, anti_pattern))
    print("anti-vertex query (triangle whose 0-1 edge has no other "
          "common neighbor):")
    print(f"  {outcome.cell()}s  {outcome.count if outcome.ok else '-'} "
          f"matches")


if __name__ == "__main__":
    main()
