#!/usr/bin/env python3
"""Community-core discovery: an end-to-end MQC use case.

The paper motivates maximal quasi-cliques with social network analysis
(tracking communities [21, 32]): the maximal gamma-quasi-cliques of a
friendship graph are its cohesive cores.  This example builds a
two-era "friendship network" (the second era rewires part of the
first), mines maximal quasi-cliques in both eras, and reports which
community cores persisted, dissolved, or emerged — a miniature of the
community-evolution studies MQC serves.

Run:  python examples/social_network_analysis.py
"""

import random

from repro.apps import maximal_quasi_cliques
from repro.graph import GraphBuilder, community_graph


def rewire(graph, fraction: float, seed: int):
    """Return a copy of ``graph`` with a fraction of edges re-targeted."""
    rng = random.Random(seed)
    edges = list(graph.edges())
    keep = [e for e in edges if rng.random() > fraction]
    builder = GraphBuilder(name=f"{graph.name}-era2")
    for v in graph.vertices():
        builder.add_vertex(v)
    builder.add_edges(keep)
    for _ in range(len(edges) - len(keep)):
        u = rng.randrange(graph.num_vertices)
        w = rng.randrange(graph.num_vertices)
        builder.add_edge(u, w)
    return builder.build()


def main() -> None:
    era1 = community_graph(
        10, 9, intra_probability=0.75, inter_edges=2, seed=3, name="era1"
    )
    era2 = rewire(era1, fraction=0.25, seed=4)
    print(f"era 1: {era1}\nera 2: {era2}\n")

    gamma, max_size = 0.75, 5
    cores1 = maximal_quasi_cliques(era1, gamma, max_size).all_sets()
    cores2 = maximal_quasi_cliques(era2, gamma, max_size).all_sets()

    persisted = cores1 & cores2
    dissolved = cores1 - cores2
    emerged = cores2 - cores1
    print(f"community cores (maximal gamma={gamma} quasi-cliques, "
          f"size <= {max_size}):")
    print(f"  era 1: {len(cores1)}   era 2: {len(cores2)}")
    print(f"  persisted: {len(persisted)}")
    print(f"  dissolved: {len(dissolved)}")
    print(f"  emerged:   {len(emerged)}")

    # Communities that only *shrank* still overlap heavily: report the
    # dissolved cores that survive as subsets of some era-2 core.
    shrunk = sum(
        1
        for core in dissolved
        if any(core & other and len(core & other) >= len(core) - 1
               for other in cores2)
    )
    print(f"  of the dissolved, still present nearly intact: {shrunk}")

    if persisted:
        example = max(persisted, key=len)
        print(f"\nmost stable core across eras: {sorted(example)}")


if __name__ == "__main__":
    main()
