#!/usr/bin/env python3
"""Quickstart: mine with containment constraints in a dozen lines.

Builds a small co-authorship-style graph, mines maximal quasi-cliques
with Contigra, and contrasts the result with the unconstrained run —
the exact distinction Figure 1 of the paper illustrates.

Run:  python examples/quickstart.py
"""

from repro.apps import maximal_quasi_cliques, mine_quasi_cliques
from repro.graph import community_graph


def main() -> None:
    # Planted communities are rich in dense subgraphs — the natural
    # habitat of quasi-cliques.
    graph = community_graph(
        num_communities=8,
        community_size=8,
        intra_probability=0.7,
        inter_edges=2,
        seed=7,
        name="quickstart",
    )
    print(f"data graph: {graph}")

    gamma, max_size = 0.8, 5

    plain = mine_quasi_cliques(graph, gamma, max_size)
    print(
        f"\nall gamma={gamma} quasi-cliques up to size {max_size}: "
        f"{plain.count}"
    )
    for size in sorted(plain.by_size):
        print(f"  size {size}: {len(plain.by_size[size])}")

    result = maximal_quasi_cliques(graph, gamma, max_size)
    print(f"\nmaximal quasi-cliques: {result.count}")
    for size in sorted(result.by_size):
        print(f"  size {size}: {len(result.by_size[size])}")

    stats = result.stats
    print("\nwhat Contigra did under the hood:")
    print(f"  matches validated during exploration: {stats.matches_checked}")
    print(f"  VTasks run: {stats.vtasks_started}")
    print(f"  VTasks canceled by lateral dependencies: "
          f"{stats.vtasks_canceled_lateral}")
    print(f"  VTask results promoted to ETasks: {stats.promotions}")
    print(f"  ETask re-explorations canceled: {stats.etasks_canceled}")
    print(f"  cache hit rate: {stats.cache_hit_rate:.1%}")

    smallest = min(result.all_sets(), key=len)
    print(f"\nexample maximal quasi-clique: {sorted(smallest)}")

    # Every result can be certificate-checked against its definition.
    from repro.apps import verify_maximal_quasi_cliques

    violations = verify_maximal_quasi_cliques(
        graph, result.all_sets(), gamma, max_size
    )
    print(f"self-verification: "
          f"{'OK' if not violations else violations[:3]}")


if __name__ == "__main__":
    main()
