#!/usr/bin/env python3
"""Minimal keyword search over a labeled graph (the Fig 15 scenario).

Picks the most-frequent (MF) and less-frequent (LF) keyword triples of
a labeled dataset, mines minimal connected covers with Contigra, and
contrasts the work against the post-hoc Peregrine+ baseline.  Also
prints the virtual state-space classification of the pattern workload
(the paper's "273 of 287 patterns skipped").

Run:  python examples/keyword_search.py [dataset]
"""

import sys

from repro.apps import (
    classify_workload,
    frequent_and_rare_keywords,
    keyword_search,
)
from repro.baselines import posthoc_kws
from repro.bench import dataset, labeled_dataset_keys
from repro.bench.harness import timed_run
from repro.core import statespace


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "mico"
    if key not in labeled_dataset_keys():
        raise SystemExit(
            f"{key!r} is not a labeled dataset; pick from "
            f"{labeled_dataset_keys()}"
        )
    graph = dataset(key)
    max_size = 5
    most_frequent, less_frequent = frequent_and_rare_keywords(graph)
    print(f"dataset={key} {graph}")
    print(f"MF keywords: {most_frequent}   LF keywords: {less_frequent}\n")

    buckets = classify_workload(most_frequent, max_size)
    total = sum(len(group) for group in buckets.values())
    print(f"pattern workload: {total} patterns")
    print(f"  skipped by virtual state-space analysis: "
          f"{len(buckets[statespace.SKIP])} "
          f"({statespace.skip_ratio(buckets):.0%})")
    print(f"  valid without checks: {len(buckets[statespace.NO_CHECK])}")
    print(f"  eager-filtered at runtime: {len(buckets[statespace.EAGER])}\n")

    for name, keywords in (("MF", most_frequent), ("LF", less_frequent)):
        ours = timed_run(
            lambda: keyword_search(graph, keywords, max_size, time_limit=120)
        )
        baseline = timed_run(
            lambda: posthoc_kws(graph, keywords, max_size, time_limit=120)
        )
        print(f"[{name}] Contigra:   {ours.cell()}s  "
              f"{ours.count if ours.ok else '-'} minimal covers, "
              f"checked={ours.value.stats.matches_checked if ours.ok else '-'}")
        print(f"[{name}] Peregrine+: {baseline.cell()}s  "
              f"{baseline.count if baseline.ok else '-'} minimal covers, "
              f"checked="
              f"{baseline.value.stats.matches_checked if baseline.ok else '-'}")
        if ours.ok and baseline.ok:
            print(f"[{name}] results agree: "
                  f"{ours.value.minimal == baseline.value.valid}\n")


if __name__ == "__main__":
    main()
