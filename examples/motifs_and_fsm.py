#!/usr/bin/env python3
"""Motif analysis and frequent subgraph mining on the substrate.

Demonstrates the two classic unconstrained workloads the paper's
introduction names (Motif Counting, Frequent Subgraph Mining) running
on the same pattern-aware engine that powers the constrained apps:

1. count all size-3/size-4 motifs of a dataset;
2. compare against a degree-matched random reference (significance);
3. mine frequent labeled subgraphs with MNI support.

Run:  python examples/motifs_and_fsm.py [dataset]
"""

import sys

from repro.apps import frequent_subgraphs, motif_counts, motif_significance
from repro.bench import dataset, dataset_keys
from repro.graph import erdos_renyi


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "mico"
    if key not in dataset_keys():
        raise SystemExit(f"unknown dataset {key!r}; pick from {dataset_keys()}")
    graph = dataset(key)
    print(f"dataset={key} {graph}\n")

    print("size-3 motif census:")
    counts3 = motif_counts(graph, 3)
    for name, count in sorted(counts3.items()):
        print(f"  {name}: {count}")

    # Null model: G(n, p) with matching density.
    reference = erdos_renyi(
        graph.num_vertices,
        graph.density,
        seed=1,
    )
    ratios = motif_significance(graph, 3, motif_counts(reference, 3))
    print("\nover/under-representation vs density-matched random graph:")
    for name, ratio in sorted(ratios.items()):
        direction = "over " if ratio > 1.5 else (
            "under" if ratio < 0.67 else "  ~  "
        )
        shown = "inf" if ratio == float("inf") else f"{ratio:.2f}"
        print(f"  {name}: {shown}x  [{direction}]")

    if graph.is_labeled:
        print("\nfrequent labeled subgraphs (size <= 3, MNI support >= 3):")
        frequent = frequent_subgraphs(graph, min_support=3, max_size=3)
        for fp in frequent[:10]:
            labels = [
                "*" if lab is None else str(lab)
                for lab in fp.pattern.labels
            ]
            print(
                f"  k={fp.pattern.num_vertices} "
                f"edges={sorted(fp.pattern.edges)} labels={labels} "
                f"support={fp.support} matches={fp.match_count}"
            )
        if len(frequent) > 10:
            print(f"  ... and {len(frequent) - 10} more")
    else:
        print("\n(dataset is unlabeled; skipping FSM — try 'mico')")


if __name__ == "__main__":
    main()
